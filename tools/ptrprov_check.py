#!/usr/bin/env python3
"""ptrprov_check: static half of ca::ptrprov -- keep the sanctioned
raw-pointer routes, the source tree, and the runtime-observed accessor
sites in agreement.

The single source of truth is docs/pointer_provenance.json.  Two checks:

  manifest-vs-source (always)
      Every bare ``Region::data()`` call in src/ (receiver declared as a
      ``Region*``/``Region&``, or a chained ``getprimary(...)->data()``
      style call) must come from a file sanctioned in the manifest's
      ``raw_data_sites``, and the per-file site count must match -- a new
      bare extraction in a sanctioned file is drift too.  Diffed both
      directions: a sanctioned file with no remaining sites is a stale
      manifest entry.

  manifest-vs-runtime (--runtime DUMP)
      DUMP is the observed-site ledger serialized by
      tests/ptrprov/ptrprov_route_test.cpp (run it with CA_PTRPROV_DUMP
      pointing at a file; tools/check.sh stage `ptrprov` does).  Every
      runtime-observed span-acquire site under src/ must be declared in
      the manifest's ``accessors`` (undeclared-site: someone added a raw
      accessor without updating the route ledger), and every declared
      accessor must have been exercised by the sanctioned workload
      (unexercised-site: dead route = stale manifest).  Sites outside
      src/ (tests, benches) are workload scaffolding and are ignored.

Usage: tools/ptrprov_check.py [--root DIR] [--manifest FILE]
                              [--runtime DUMP] [--json] [--self-test]
Exit status: 0 clean, 1 findings, 2 usage/setup error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Identifiers bound to a Region (declarations, parameters, and results of
# the region-returning data-manager queries).
REGION_DECL = re.compile(
    r"\bRegion\s*[*&]\s*(?:const\s+)?(?P<name>\w+)\b")
REGION_FROM_QUERY = re.compile(
    r"\b(?P<name>\w+)\s*=\s*[\w.>-]*"
    r"(?:allocate|getprimary|getlinked|region_on|primary)\s*\(")

# A dereference of a tracked identifier, or a chained query->data() call.
DATA_CALL = re.compile(r"\b(?P<recv>\w+)\s*(?:->|\.)\s*data\s*\(\s*\)")
CHAINED_DATA = re.compile(
    r"\b(?:getprimary|getlinked|region_on|primary)\s*\([^()]*\)\s*"
    r"(?:->|\.)\s*data\s*\(\s*\)")

WAIVER = "ca_lint: allow(region-data-route)"


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


def strip_comments_and_strings(text: str) -> str:
    """Blank out // and /* */ comments and string/char literals, preserving
    line count, so `data()` in a comment or a log message never counts."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def region_data_sites(raw: str) -> list[int]:
    """Line numbers (1-based) of bare Region::data() extractions in one
    translation unit.  Two passes: collect every identifier bound to a
    Region, then flag each `ident->data()` / `ident.data()` on one of them
    plus chained `getprimary(...)->data()`-style calls."""
    code = strip_comments_and_strings(raw)
    tracked = {m.group("name") for m in REGION_DECL.finditer(code)}
    tracked |= {m.group("name") for m in REGION_FROM_QUERY.finditer(code)}
    lines = []
    for m in DATA_CALL.finditer(code):
        if m.group("recv") in tracked:
            lines.append(code.count("\n", 0, m.start()) + 1)
    for m in CHAINED_DATA.finditer(code):
        lines.append(code.count("\n", 0, m.start()) + 1)
    return sorted(set(lines))


def scan_source(root: Path) -> dict[str, list[int]]:
    """Map of repo-relative file -> bare-extraction line numbers, src/ only
    (tests and benches stage hazards on purpose)."""
    sites: dict[str, list[int]] = {}
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/ptrprov/"):
            continue  # the subsystem itself, not a client
        lines = region_data_sites(path.read_text())
        if lines:
            sites[rel] = lines
    return sites


def load_manifest(path: Path) -> dict:
    manifest = json.loads(path.read_text())
    manifest.setdefault("raw_data_sites", [])
    manifest.setdefault("accessors", [])
    return manifest


def check_manifest_vs_source(manifest: dict, manifest_rel: str,
                             sites: dict[str, list[int]]) -> list[Finding]:
    findings: list[Finding] = []
    declared = {e["file"]: e for e in manifest["raw_data_sites"]}

    # Direction 1: every extraction in source must be sanctioned, at the
    # declared multiplicity.
    for rel, lines in sorted(sites.items()):
        entry = declared.get(rel)
        if entry is None:
            findings.append(Finding(
                rel, lines[0], "undeclared-site",
                f"bare Region::data() extraction(s) at line(s) "
                f"{', '.join(map(str, lines))} in a file not sanctioned in "
                f"{manifest_rel}"))
        elif entry.get("count") is not None and entry["count"] != len(lines):
            findings.append(Finding(
                rel, lines[0], "count-drift",
                f"{len(lines)} bare Region::data() site(s) found but "
                f"{manifest_rel} sanctions {entry['count']} -- a raw "
                "extraction was added or removed without updating the "
                "manifest"))

    # Direction 2: every sanctioned file must still have extractions.
    for rel in sorted(set(declared) - set(sites)):
        findings.append(Finding(
            manifest_rel, 1, "stale-manifest",
            f"`{rel}` is sanctioned for bare Region::data() but no such "
            "site exists there any more"))
    return findings


def check_manifest_vs_runtime(manifest: dict, manifest_rel: str,
                              dump: dict, dump_rel: str) -> list[Finding]:
    findings: list[Finding] = []
    declared = {(a["kind"], a["site"]) for a in manifest["accessors"]}
    observed: dict[tuple[str, str], int] = {}
    for s in dump.get("sites", []):
        # Runtime sites are absolute `path:line`; normalize to the
        # repo-relative file by the `src/` suffix.  Sites outside src/
        # (tests, benches driving the workload) are scaffolding.
        path = s.get("site", "").rsplit(":", 1)[0]
        idx = path.rfind("src/")
        if idx == -1:
            continue
        key = (s.get("kind", "?"), path[idx:])
        observed[key] = observed.get(key, 0) + s.get("count", 1)

    # Direction 1: everything observed at runtime must be declared.
    for (kind, site), count in sorted(observed.items()):
        if (kind, site) not in declared:
            findings.append(Finding(
                dump_rel, 1, "undeclared-site",
                f"runtime observed {count} `{kind}` event(s) from `{site}` "
                f"but {manifest_rel} does not declare that accessor"))

    # Direction 2: everything declared must be alive in the workload.
    for kind, site in sorted(declared - set(observed)):
        findings.append(Finding(
            manifest_rel, 1, "unexercised-site",
            f"manifest accessor `{site}` ({kind}) was never observed by "
            "the sanctioned workload (dead route or stale manifest)"))
    return findings


# --- self-test ---------------------------------------------------------------

SELF_TEST_CLEAN = """\
#include "dm/object.hpp"
// a region->data() mention in a comment must not count
void feed(Region& dst, Region& src) {
  const char* msg = "src.data() in a string must not count";
  engine.copy(dst.data(), src.data());
}
"""

SELF_TEST_ROGUE = """\
#include "dm/object.hpp"
float* sneak(dm::DataManager& dm, dm::Object& o) {
  auto* primary = dm.getprimary(o);
  return reinterpret_cast<float*>(primary->data());
}
"""

SELF_TEST_MANIFEST = {
    "raw_data_sites": [
        # `count` sanctions unique site LINES (the two extractions in the
        # fixture share line 5).
        {"file": "src/mem/feed.cpp", "count": 1, "why": "copy-engine feed"},
    ],
    "accessors": [
        {"site": "src/core/cached_array.hpp", "kind": "acquire",
         "why": "bracket"},
    ],
}

SELF_TEST_DUMP_CLEAN = {
    "sites": [
        {"kind": "acquire", "site": "/x/src/core/cached_array.hpp:126",
         "count": 4},
        {"kind": "acquire", "site": "/x/tests/route_test.cpp:33",
         "count": 1},
    ],
}

SELF_TEST_DUMP_ROGUE = {
    "sites": [
        {"kind": "acquire", "site": "/x/src/policy/rogue_policy.cpp:77",
         "count": 1},
    ],
}


def self_test() -> int:
    """Negative tests: the checker must go red on an unsanctioned bare
    extraction, a count drift, a stale manifest entry, an undeclared
    runtime accessor, and an unexercised declared one -- and stay green on
    the clean fixtures (including data() in comments and strings)."""
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        (root / "src" / "mem").mkdir(parents=True)
        (root / "src" / "mem" / "feed.cpp").write_text(SELF_TEST_CLEAN)

        sites = scan_source(root)
        if sites != {"src/mem/feed.cpp": [5]}:
            failures.append(f"source scan mismatch: {sites} (comment/string "
                            "sites must not count; line 5 holds two)")
        if len(region_data_sites(SELF_TEST_CLEAN)) != 1:
            failures.append("expected the two same-line extractions to "
                            "collapse to one site line")

        clean = check_manifest_vs_source(
            SELF_TEST_MANIFEST, "manifest.json", sites)
        if clean:
            failures.append(f"clean source diff not empty: {clean[0]}")

        # Drift 0: one extra extraction line in a sanctioned file.
        with_extra = SELF_TEST_CLEAN + "\nvoid g(Region* r) { r->data(); }\n"
        rules = {f.rule for f in check_manifest_vs_source(
            SELF_TEST_MANIFEST, "manifest.json",
            {"src/mem/feed.cpp": region_data_sites(with_extra)})}
        if "count-drift" not in rules:
            failures.append(
                f"added extraction not detected, rules={sorted(rules)}")

        # Drift A: a bare extraction in an unsanctioned file.
        (root / "src" / "policy").mkdir(parents=True)
        (root / "src" / "policy" / "rogue.cpp").write_text(SELF_TEST_ROGUE)
        rules = {f.rule for f in check_manifest_vs_source(
            SELF_TEST_MANIFEST, "manifest.json", scan_source(root))}
        if "undeclared-site" not in rules:
            failures.append(
                f"unsanctioned extraction not detected, rules={sorted(rules)}")

        # Drift B: the sanctioned file loses its extraction (stale entry).
        (root / "src" / "policy" / "rogue.cpp").unlink()
        (root / "src" / "mem" / "feed.cpp").write_text("// nothing left\n")
        rules = {f.rule for f in check_manifest_vs_source(
            SELF_TEST_MANIFEST, "manifest.json", scan_source(root))}
        if "stale-manifest" not in rules:
            failures.append(
                f"stale manifest entry not detected, rules={sorted(rules)}")

    runtime_clean = check_manifest_vs_runtime(
        SELF_TEST_MANIFEST, "manifest.json", SELF_TEST_DUMP_CLEAN,
        "dump.json")
    if runtime_clean:
        failures.append(f"clean runtime diff not empty: {runtime_clean[0]}")

    rules = {f.rule for f in check_manifest_vs_runtime(
        SELF_TEST_MANIFEST, "manifest.json", SELF_TEST_DUMP_ROGUE,
        "dump.json")}
    if "undeclared-site" not in rules:
        failures.append(
            f"undeclared runtime accessor not flagged, rules={sorted(rules)}")
    if "unexercised-site" not in rules:
        failures.append(
            f"unexercised declared accessor not flagged, rules={sorted(rules)}")

    for f in failures:
        print(f"ptrprov_check --self-test: {f}", file=sys.stderr)
    if failures:
        return 1
    print("ptrprov_check --self-test: ok")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout "
                             "containing this script)")
    parser.add_argument("--manifest", type=Path, default=None,
                        help="pointer-provenance manifest "
                             "(default: docs/pointer_provenance.json)")
    parser.add_argument("--runtime", type=Path, default=None,
                        help="runtime observed-site dump (CA_PTRPROV_DUMP "
                             "output of tests/ptrprov/ptrprov_route_test) to "
                             "diff against the manifest")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as a JSON array on stdout")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker's own negative tests and exit")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"ptrprov_check: no src/ under {root}", file=sys.stderr)
        return 2
    manifest_path = args.manifest or root / "docs" / "pointer_provenance.json"
    if not manifest_path.exists():
        print(f"ptrprov_check: manifest {manifest_path} not found",
              file=sys.stderr)
        return 2
    manifest = load_manifest(manifest_path)
    try:
        manifest_rel = manifest_path.resolve().relative_to(root).as_posix()
    except ValueError:
        manifest_rel = manifest_path.as_posix()

    sites = scan_source(root)
    findings = check_manifest_vs_source(manifest, manifest_rel, sites)
    checked = "source"
    if args.runtime is not None:
        if not args.runtime.exists():
            print(f"ptrprov_check: runtime dump {args.runtime} not found",
                  file=sys.stderr)
            return 2
        dump = json.loads(args.runtime.read_text())
        findings += check_manifest_vs_runtime(manifest, manifest_rel, dump,
                                              args.runtime.as_posix())
        checked += "+runtime-sites"

    if args.json:
        print(json.dumps({"tool": "ptrprov_check", "checked": checked,
                          "findings": [f.to_json() for f in findings]},
                         indent=2))
    else:
        for finding in findings:
            print(finding)
    if findings:
        print(f"ptrprov_check: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        total = sum(len(v) for v in sites.values())
        print(f"ptrprov_check: clean ({checked}; {total} sanctioned bare "
              f"extraction line(s) across {len(sites)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
