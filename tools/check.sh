#!/usr/bin/env bash
# tools/check.sh — the correctness gate for the data-management core.
#
# Stages, in order:
#   asan     ASan+UBSan Debug build of the whole tree (Debug ⇒
#            CA_AUDIT_ENABLED, so every DataManager mutation boundary is
#            audited during the tests), then the full ctest suite under it —
#            including the randomized audit stress harness (ctest -R audit,
#            which sweeps the binned allocator under BOTH fit policies with
#            seeded >=5k-step runs) and the Transfer edge-case tests.
#   tsan     TSan build of the concurrency-bearing components (thread pool,
#            copy engine, data-manager transfer registry) and their tests,
#            including the Async* interleaving suites.
#   race     CA_RACE=ON build (instrumented sync shims + vector-clock
#            detector) and the deterministic schedule-explorer suite
#            (ctest -R race, plus the Transfer edge cases under the shims).
#   lockdep  lock-order analysis gate: the ca::lockdep suite on the CA_RACE
#            build (ctest -R lockdep — unit, hazard, and graph tests), the
#            checker self-tests, the manifest-vs-annotations and
#            manifest-vs-runtime-graph diffs (tools/lockdep_check.py with
#            the CA_LOCKDEP_DUMP emitted by the graph test), and the
#            generated lock table in docs/CONCURRENCY.md
#            (tools/gen_lock_table.py --check).
#   ptrprov  pointer-provenance gate: the ca::ptrprov suite on the CA_RACE
#            build (ctest -R ptrprov — runtime, hazard-explorer, and
#            sanctioned-route tests), the checker self-tests, the manifest
#            vs source vs runtime-observed-site diffs
#            (tools/ptrprov_check.py with the CA_PTRPROV_DUMP emitted by
#            the route test), and the generated provenance table in
#            docs/CONCURRENCY.md (tools/gen_prov_table.py --check).
#   multitenant  shared-manager concurrency gate: the multi-tenant suite
#            (semantics + per-tenant accounting + plain-thread concurrency,
#            tests/dm/multitenant_test.cpp) under the ASan build and the
#            TSan build, the cross-tenant hazard scenarios under the
#            CA_RACE schedule explorer (flagged-then-fixed across >=1000
#            distinct schedules), and the K=4 shared-manager bench on its
#            smoke shape (bench-smoke.micro_multitenant).
#   comm     data-parallel comm gate: the comm suite (interconnect cost
#            models, CommEngine, dp::Trainer, determinism) under the ASan
#            build and the TSan build, the allreduce lifecycle hazards
#            (bucket reuse before reduce complete, free while on wire)
#            under the CA_RACE schedule explorer (flagged-then-fixed
#            across >=1000 distinct schedules), and the bucketed-allreduce
#            bench on its smoke shape (bench-smoke.micro_allreduce).
#   kparity  kernel-parity: the fast compute-kernel tier vs the scalar
#            reference kernels (ctest -R kparity) under BOTH the ASan build
#            and the CA_RACE build, so the blocked GEMM / im2col / parallel
#            elementwise paths are proven numerically correct and race-free
#            with CA_NATIVE=OFF (the portable codegen CI ships).
#   simd     runtime-dispatch gate: the kernel-parity and simd suites on
#            the ASan build at CA_ISA=scalar AND at the highest level the
#            host supports (so the AVX2/AVX-512 GEMM tiles and NT-store
#            copy kernels are proven byte/tolerance-correct under ASan at
#            every dispatch tier), then the NT-writeback hazard scenario
#            plus the simd suite under the CA_RACE shims.  Skip-aware: on
#            a host without AVX2 only the scalar half runs.
#   bench    bench-smoke: every bench entry point runs end to end on tiny
#            shapes (ctest -L bench-smoke on the ASan build).
#   tidy     clang-tidy over src/ with the repo's .clang-tidy profile.
#   ca_lint  tools/ca_lint.py repository rules (byte-copy routing,
#            wall-clock ban, DataManager audit boundaries, kernel scratch
#            routing, intrusive bin-link confinement), preceded by the
#            linter's own --self-test.
#
# Exits non-zero on the first finding of a stage that ran.  Stages whose
# toolchain is not installed (e.g. clang-tidy on a gcc-only box) emit a
# machine-readable "SKIPPED:<stage> <reason>" line rather than silently
# passing; --require-all turns any skip into a non-zero exit so CI images
# that are supposed to carry the full toolchain cannot degrade quietly.
#
# Under GitHub Actions (GITHUB_ACTIONS set) the file:line findings of the
# linter stages are re-emitted as ::error annotations so they surface on
# the PR diff.
#
# Usage: tools/check.sh [--jobs N] [--require-all]
#                       [--skip-tsan] [--skip-race] [--skip-lockdep]
#                       [--skip-ptrprov] [--skip-multitenant] [--skip-comm]
#                       [--skip-kparity] [--skip-simd]
#                       [--skip-bench] [--skip-tidy] [--skip-lint]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=1
RUN_RACE=1
RUN_LOCKDEP=1
RUN_PTRPROV=1
RUN_MULTITENANT=1
RUN_COMM=1
RUN_KPARITY=1
RUN_SIMD=1
RUN_BENCH=1
RUN_TIDY=1
RUN_LINT=1
REQUIRE_ALL=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="${2:?--jobs requires a value}"; shift 2 ;;
    --require-all) REQUIRE_ALL=1; shift ;;
    --skip-tsan) RUN_TSAN=0; shift ;;
    --skip-race) RUN_RACE=0; shift ;;
    --skip-lockdep) RUN_LOCKDEP=0; shift ;;
    --skip-ptrprov) RUN_PTRPROV=0; shift ;;
    --skip-multitenant) RUN_MULTITENANT=0; shift ;;
    --skip-comm) RUN_COMM=0; shift ;;
    --skip-kparity) RUN_KPARITY=0; shift ;;
    --skip-simd) RUN_SIMD=0; shift ;;
    --skip-bench) RUN_BENCH=0; shift ;;
    --skip-tidy) RUN_TIDY=0; shift ;;
    --skip-lint) RUN_LINT=0; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

note() { printf '\n==== %s ====\n' "$*"; }
# Re-emit `path:line: message` findings as GitHub Actions ::error
# annotations (in addition to the plain lines) when running under GHA.
annotate() {
  if [[ -n "${GITHUB_ACTIONS:-}" ]]; then
    sed -E 's|^([^: ]+):([0-9]+): (.*)$|&\n::error file=\1,line=\2::\3|'
  else
    cat
  fi
}
fail=0
skipped=()
skip() {  # skip <stage> <reason...>
  local stage="$1"; shift
  skipped+=("$stage")
  printf 'SKIPPED:%s %s\n' "$stage" "$*"
}

# --- asan: ASan + UBSan, full suite, audit hooks armed ------------------------
note "asan: ASan+UBSan Debug build (CA_AUDIT_ENABLED) + full ctest"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCA_SANITIZE=address,undefined \
  -DCA_WERROR=OFF > /dev/null
cmake --build build-asan -j "$JOBS" \
  --target test_util test_sim test_telemetry test_mem test_dm test_policy \
           test_core test_twolm test_dnn test_integration test_audit \
           test_race test_simd
( cd build-asan && ctest -j "$JOBS" --output-on-failure )
note "asan: audit suite under sanitizers (ctest -R audit)"
( cd build-asan && ctest -R audit --output-on-failure )

# --- tsan: the threaded substrate ---------------------------------------------
if [[ "$RUN_TSAN" -eq 1 ]]; then
  note "tsan: thread pool + copy engine + async mover tests"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCA_SANITIZE=thread \
    -DCA_WERROR=OFF > /dev/null
  cmake --build build-tsan -j "$JOBS" --target test_util test_mem test_dm
  ( cd build-tsan && ctest -R 'ThreadPool|CopyEngine|Async|TransferEdge|Latch' \
      --output-on-failure )
else
  skip tsan "--skip-tsan"
fi

# --- race: deterministic schedule exploration under the instrumented shims ----
if [[ "$RUN_RACE" -eq 1 ]]; then
  note "race: CA_RACE=ON build + schedule-explorer suite (ctest -R race)"
  cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
  cmake --build build-race -j "$JOBS" --target test_race test_mem test_util
  ( cd build-race && ctest -R 'race\.|TransferEdge|Latch' --output-on-failure )
else
  skip race "--skip-race"
fi

# --- lockdep: lock-order analysis gate ----------------------------------------
if [[ "$RUN_LOCKDEP" -eq 1 ]]; then
  if command -v python3 > /dev/null 2>&1; then
    note "lockdep: ca::lockdep suite on the CA_RACE build (ctest -R lockdep)"
    # Self-contained under --skip-race (CI runs lockdep as its own job);
    # CA_RACE implies CA_LOCKDEP_ENABLED and arms the schedule explorer
    # the hazard scenarios need.
    cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
    cmake --build build-race -j "$JOBS" --target test_lockdep
    ( cd build-race && ctest -R 'lockdep\.' --output-on-failure )

    note "lockdep: checker self-tests + manifest vs annotations vs runtime graph"
    if ! python3 tools/lockdep_check.py --self-test; then
      fail=1
    fi
    # The graph test re-runs the sanctioned workload and dumps the observed
    # acquisition-order graph; the checker then diffs manifest <-> source
    # annotations and manifest <-> runtime graph, both directions.
    LOCKDEP_DUMP="$(pwd)/build-race/lockdep_graph.json"
    ( cd build-race && CA_LOCKDEP_DUMP="$LOCKDEP_DUMP" \
        ctest -R 'lockdep\.LockdepGraph\.' --output-on-failure )
    if ! python3 tools/lockdep_check.py --graph "$LOCKDEP_DUMP" | annotate; then
      fail=1
    fi
    if ! python3 tools/gen_lock_table.py --check; then
      fail=1
    fi
  else
    skip lockdep "python3 not installed"
  fi
else
  skip lockdep "--skip-lockdep"
fi

# --- ptrprov: pointer-provenance & pin-discipline gate ------------------------
if [[ "$RUN_PTRPROV" -eq 1 ]]; then
  if command -v python3 > /dev/null 2>&1; then
    note "ptrprov: ca::ptrprov suite on the CA_RACE build (ctest -R ptrprov)"
    # Self-contained under --skip-race (CI runs ptrprov as its own job);
    # CA_RACE implies CA_PTRPROV_ENABLED and arms the schedule explorer
    # the hazard scenarios need.
    cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
    cmake --build build-race -j "$JOBS" --target test_ptrprov
    ( cd build-race && ctest -R 'ptrprov\.' --output-on-failure )

    note "ptrprov: checker self-tests + manifest vs source vs runtime sites"
    if ! python3 tools/ptrprov_check.py --self-test; then
      fail=1
    fi
    # The route test re-runs the sanctioned workloads and dumps the
    # observed accessor/escape sites; the checker then diffs manifest <->
    # source scan and manifest <-> runtime sites, both directions.
    PTRPROV_DUMP="$(pwd)/build-race/prov_sites.json"
    ( cd build-race && CA_PTRPROV_DUMP="$PTRPROV_DUMP" \
        ctest -R 'ptrprov\.PtrprovRoutes\.DumpObservedSitesWhenRequested' \
        --output-on-failure )
    if ! python3 tools/ptrprov_check.py --runtime "$PTRPROV_DUMP" | annotate; then
      fail=1
    fi
    if ! python3 tools/gen_prov_table.py --check; then
      fail=1
    fi
  else
    skip ptrprov "python3 not installed"
  fi
else
  skip ptrprov "--skip-ptrprov"
fi

# --- multitenant: shared-manager concurrency gate -----------------------------
if [[ "$RUN_MULTITENANT" -eq 1 ]]; then
  note "multitenant: suite under ASan (semantics + plain-thread concurrency)"
  cmake --build build-asan -j "$JOBS" --target test_multitenant
  ( cd build-asan && ctest -R 'multitenant\.' --output-on-failure )

  note "multitenant: suite under TSan"
  # Self-contained under --skip-tsan (CI runs multitenant as its own job).
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCA_SANITIZE=thread \
    -DCA_WERROR=OFF > /dev/null
  cmake --build build-tsan -j "$JOBS" --target test_multitenant
  ( cd build-tsan && ctest -R 'multitenant\.' --output-on-failure )

  note "multitenant: cross-tenant hazards under the CA_RACE schedule explorer"
  # Self-contained under --skip-race; CA_RACE arms the explorer the
  # flagged-then-fixed hazard scenarios need (>=1000 distinct schedules).
  cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
  cmake --build build-race -j "$JOBS" --target test_multitenant
  ( cd build-race && ctest -R 'multitenant\.' --output-on-failure )

  note "multitenant: K=4 shared-manager bench on the smoke shape"
  cmake --build build-asan -j "$JOBS" --target micro_multitenant
  ( cd build-asan && ctest -R 'bench-smoke\.micro_multitenant' \
      --output-on-failure )
else
  skip multitenant "--skip-multitenant"
fi

# --- comm: data-parallel allreduce gate ---------------------------------------
if [[ "$RUN_COMM" -eq 1 ]]; then
  note "comm: suite under ASan (cost models + CommEngine + dp::Trainer)"
  cmake --build build-asan -j "$JOBS" --target test_comm
  ( cd build-asan && ctest -R '^comm\.' --output-on-failure )

  note "comm: suite under TSan"
  # Self-contained under --skip-tsan (CI runs comm as its own job).
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCA_SANITIZE=thread \
    -DCA_WERROR=OFF > /dev/null
  cmake --build build-tsan -j "$JOBS" --target test_comm
  ( cd build-tsan && ctest -R '^comm\.' --output-on-failure )

  note "comm: allreduce lifecycle hazards under the CA_RACE schedule explorer"
  # Self-contained under --skip-race; CA_RACE arms the explorer the
  # flagged-then-fixed hazard scenarios need (>=1000 distinct schedules).
  cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
  cmake --build build-race -j "$JOBS" --target test_comm
  ( cd build-race && ctest -R '^comm\.' --output-on-failure )

  note "comm: bucketed-allreduce bench on the smoke shape"
  cmake --build build-asan -j "$JOBS" --target micro_allreduce
  ( cd build-asan && ctest -R 'bench-smoke\.micro_allreduce' \
      --output-on-failure )
else
  skip comm "--skip-comm"
fi

# --- kparity: fast kernel tier vs the scalar reference ------------------------
if [[ "$RUN_KPARITY" -eq 1 ]]; then
  note "kparity: kernel parity suite under ASan (ctest -R kparity)"
  cmake --build build-asan -j "$JOBS" --target test_kernels
  ( cd build-asan && ctest -R 'kparity\.' --output-on-failure )
  # The race half configures build-race itself so this stage is
  # self-contained under --skip-race (CI runs kparity as its own job).
  # CA_NATIVE stays OFF: parity must hold for the portable codegen.
  note "kparity: kernel parity suite under CA_RACE shims"
  cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
  cmake --build build-race -j "$JOBS" --target test_kernels
  ( cd build-race && ctest -R 'kparity\.' --output-on-failure )
else
  skip kparity "--skip-kparity"
fi

# --- simd: dispatch levels, NT copy path, race coverage -----------------------
if [[ "$RUN_SIMD" -eq 1 ]]; then
  note "simd: kparity + simd suites under ASan at CA_ISA=scalar"
  cmake --build build-asan -j "$JOBS" --target test_kernels test_simd
  ( cd build-asan && CA_ISA=scalar ctest -R 'kparity\.|simd\.' \
      --output-on-failure )
  # The CA_ISA env pins the entry level; the in-process sweep tests still
  # cover every supported level inside each run.
  if grep -qm1 avx2 /proc/cpuinfo 2>/dev/null; then
    note "simd: kparity + simd suites under ASan at CA_ISA=native"
    ( cd build-asan && CA_ISA=native ctest -R 'kparity\.|simd\.' \
        --output-on-failure )
    note "simd: NT-writeback hazard + simd suite under CA_RACE shims"
    cmake -B build-race -S . -DCA_RACE=ON -DCA_WERROR=OFF > /dev/null
    cmake --build build-race -j "$JOBS" --target test_race test_simd
    ( cd build-race && ctest -R 'race\.RaceHazards\.NtWriteback|simd\.' \
        --output-on-failure )
  else
    skip simd-native "host CPU lacks AVX2; scalar half ran"
  fi
else
  skip simd "--skip-simd"
fi

# --- bench smoke ---------------------------------------------------------------
if [[ "$RUN_BENCH" -eq 1 ]]; then
  note "bench: every bench entry point on tiny shapes"
  cmake --build build-asan -j "$JOBS" \
    --target ablation_async micro_kernels micro_async_mover micro_allocator \
             micro_copy_engine micro_multitenant micro_allreduce micro_ptrprov
  ( cd build-asan && ctest -L bench-smoke --output-on-failure )
else
  skip bench "--skip-bench"
fi

# --- tidy: clang-tidy over src/ -------------------------------------------------
if [[ "$RUN_TIDY" -eq 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    note "tidy: clang-tidy over src/ (profile: .clang-tidy, warnings are errors)"
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    if ! clang-tidy -p build-tidy --quiet "${sources[@]}"; then
      fail=1
    fi
  else
    skip tidy "clang-tidy not installed"
  fi
else
  skip tidy "--skip-tidy"
fi

# --- ca_lint: repository rules ----------------------------------------------------
if [[ "$RUN_LINT" -eq 1 ]]; then
  if command -v python3 > /dev/null 2>&1; then
    note "ca_lint: repository rules (tools/ca_lint.py)"
    if ! python3 tools/ca_lint.py --self-test; then
      fail=1
    fi
    if ! python3 tools/ca_lint.py | annotate; then
      fail=1
    fi
  else
    skip ca_lint "python3 not installed"
  fi
else
  skip ca_lint "--skip-lint"
fi

if [[ "$fail" -ne 0 ]]; then
  note "check.sh: FINDINGS — see above"
  exit 1
fi
if [[ "${#skipped[@]}" -gt 0 ]]; then
  note "check.sh: clean, but ${#skipped[@]} stage(s) skipped: ${skipped[*]}"
  if [[ "$REQUIRE_ALL" -eq 1 ]]; then
    echo "check.sh: --require-all set and stages were skipped" >&2
    exit 3
  fi
  exit 0
fi
note "check.sh: all stages clean"
