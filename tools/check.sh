#!/usr/bin/env bash
# tools/check.sh — the correctness gate for the data-management core.
#
# Runs, in order:
#   1. ASan+UBSan Debug build of the whole tree (Debug ⇒ CA_AUDIT_ENABLED,
#      so every DataManager mutation boundary is audited during the tests),
#      then the full ctest suite under it — including the randomized audit
#      stress harness (ctest -R audit).
#   2. TSan build of the concurrency-bearing components (thread pool, copy
#      engine, data-manager transfer registry) and their tests, including
#      the Async* interleaving suites.
#   3. bench-smoke: every bench entry point runs end to end on tiny shapes
#      (ctest -L bench-smoke on the ASan build).
#   4. clang-tidy over src/ with the repo's .clang-tidy profile.
#
# Exits non-zero on the first finding of any stage.  Stages whose toolchain
# is not installed (e.g. clang-tidy on a gcc-only box) are SKIPPED with a
# loud note rather than silently passed; CI images that carry the tools get
# the full gate.
#
# Usage: tools/check.sh [--jobs N] [--skip-tsan] [--skip-bench] [--skip-tidy]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=1
RUN_BENCH=1
RUN_TIDY=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --jobs) JOBS="${2:?--jobs requires a value}"; shift 2 ;;
    --skip-tsan) RUN_TSAN=0; shift ;;
    --skip-bench) RUN_BENCH=0; shift ;;
    --skip-tidy) RUN_TIDY=0; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

note() { printf '\n==== %s ====\n' "$*"; }
fail=0

# --- 1. ASan + UBSan, full suite, audit hooks armed -------------------------
note "ASan+UBSan Debug build (CA_AUDIT_ENABLED) + full ctest"
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCA_SANITIZE=address,undefined \
  -DCA_WERROR=OFF > /dev/null
cmake --build build-asan -j "$JOBS" \
  --target test_util test_sim test_telemetry test_mem test_dm test_policy \
           test_core test_twolm test_dnn test_integration test_audit
( cd build-asan && ctest -j "$JOBS" --output-on-failure )
note "audit suite under sanitizers (ctest -R audit)"
( cd build-asan && ctest -R audit --output-on-failure )

# --- 2. TSan on the threaded substrate ---------------------------------------
if [[ "$RUN_TSAN" -eq 1 ]]; then
  note "TSan build: thread pool + copy engine + async mover tests"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCA_SANITIZE=thread \
    -DCA_WERROR=OFF > /dev/null
  cmake --build build-tsan -j "$JOBS" --target test_util test_mem test_dm
  ( cd build-tsan && ctest -R 'ThreadPool|CopyEngine|Async' --output-on-failure )
else
  note "TSan stage skipped (--skip-tsan)"
fi

# --- 3. bench smoke ----------------------------------------------------------
if [[ "$RUN_BENCH" -eq 1 ]]; then
  note "bench-smoke: every bench entry point on tiny shapes"
  cmake --build build-asan -j "$JOBS" --target ablation_async micro_async_mover
  ( cd build-asan && ctest -L bench-smoke --output-on-failure )
else
  note "bench-smoke stage skipped (--skip-bench)"
fi

# --- 4. clang-tidy over src/ -------------------------------------------------
if [[ "$RUN_TIDY" -eq 1 ]]; then
  if command -v clang-tidy > /dev/null 2>&1; then
    note "clang-tidy over src/ (profile: .clang-tidy, warnings are errors)"
    cmake -B build-tidy -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
    mapfile -t sources < <(find src -name '*.cpp' | sort)
    if ! clang-tidy -p build-tidy --quiet "${sources[@]}"; then
      fail=1
    fi
  else
    note "clang-tidy NOT INSTALLED — lint stage SKIPPED (install clang-tidy to run the full gate)"
  fi
else
  note "clang-tidy stage skipped (--skip-tidy)"
fi

if [[ "$fail" -ne 0 ]]; then
  note "check.sh: FINDINGS — see above"
  exit 1
fi
note "check.sh: all stages clean"
