#include <gtest/gtest.h>

#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/trace.hpp"

namespace ca::telemetry {
namespace {

TEST(TrafficCounters, StartsAtZero) {
  TrafficCounters c;
  EXPECT_EQ(c.device(sim::kFast).total(), 0u);
  EXPECT_EQ(c.device(sim::kSlow).total(), 0u);
}

TEST(TrafficCounters, RecordsPerDeviceAndDirection) {
  TrafficCounters c;
  c.record_read(sim::kFast, 100);
  c.record_write(sim::kFast, 50);
  c.record_read(sim::kSlow, 7);
  EXPECT_EQ(c.device(sim::kFast).bytes_read, 100u);
  EXPECT_EQ(c.device(sim::kFast).bytes_written, 50u);
  EXPECT_EQ(c.device(sim::kFast).read_ops, 1u);
  EXPECT_EQ(c.device(sim::kFast).write_ops, 1u);
  EXPECT_EQ(c.device(sim::kSlow).bytes_read, 7u);
  EXPECT_EQ(c.device(sim::kFast).total(), 150u);
}

TEST(TrafficCounters, DeltaSinceSnapshot) {
  TrafficCounters c;
  c.record_read(sim::kFast, 100);
  const auto snap = c.device(sim::kFast);
  c.record_read(sim::kFast, 30);
  c.record_write(sim::kFast, 20);
  const auto d = c.delta(sim::kFast, snap);
  EXPECT_EQ(d.bytes_read, 30u);
  EXPECT_EQ(d.bytes_written, 20u);
  EXPECT_EQ(d.read_ops, 1u);
}

TEST(TrafficCounters, ResetClears) {
  TrafficCounters c;
  c.record_write(sim::kSlow, 99);
  c.reset();
  EXPECT_EQ(c.device(sim::kSlow).total(), 0u);
}

TEST(TimeSeries, RecordsSamples) {
  TimeSeries s("x");
  EXPECT_TRUE(s.empty());
  s.record(0.0, 1.0);
  s.record(1.0, 3.0);
  EXPECT_EQ(s.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(s.max_value(), 3.0);
}

TEST(TimeSeries, MaxOfEmptyIsZero) {
  TimeSeries s("x");
  EXPECT_DOUBLE_EQ(s.max_value(), 0.0);
}

TEST(TimeSeries, DownsampleReducesToBucketCount) {
  TimeSeries s("x");
  for (int i = 0; i < 1000; ++i) {
    s.record(static_cast<double>(i), static_cast<double>(i % 10));
  }
  const auto out = s.downsample(10);
  EXPECT_LE(out.size(), 10u);
  EXPECT_GE(out.size(), 9u);
  // Bucket means of a repeating 0..9 pattern are ~4.5.
  for (const auto& sample : out) EXPECT_NEAR(sample.value, 4.5, 1.0);
}

TEST(TimeSeries, DownsampleOfShortSeriesIsIdentity) {
  TimeSeries s("x");
  s.record(0.0, 1.0);
  s.record(1.0, 2.0);
  const auto out = s.downsample(10);
  EXPECT_EQ(out.size(), 2u);
}

TEST(TimeSeries, DownsamplePreservesTimeOrder) {
  TimeSeries s("x");
  for (int i = 0; i < 100; ++i) s.record(i * 0.1, 1.0);
  const auto out = s.downsample(7);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_GT(out[i].t, out[i - 1].t);
  }
}

TEST(TimeSeries, CsvSerialization) {
  TimeSeries s("resident");
  s.record(0.5, 42.0);
  const auto csv = s.to_csv();
  EXPECT_NE(csv.find("t,resident"), std::string::npos);
  EXPECT_NE(csv.find("0.5,42"), std::string::npos);
}

TEST(BusUtilization, AveragesBusyOverElapsed) {
  BusUtilization u;
  u.record_transfer(2.0);
  u.record_transfer(3.0);
  EXPECT_DOUBLE_EQ(u.busy_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(u.average(10.0), 0.5);
  EXPECT_DOUBLE_EQ(u.average(4.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(u.average(0.0), 0.0);
}

}  // namespace
}  // namespace ca::telemetry
