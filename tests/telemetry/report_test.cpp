#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ca::telemetry {
namespace {

TEST(Csv, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.5s"), "1.5s");
}

TEST(Csv, CommasAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesAreQuoted) {
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, TableSerialization) {
  const auto csv = to_csv({{"model", "time"}, {"ResNet 200", "1,000s"}});
  EXPECT_EQ(csv, "model,time\nResNet 200,\"1,000s\"\n");
}

TEST(Csv, EmptyTable) { EXPECT_EQ(to_csv({}), ""); }

TEST(Csv, WriteAndReadBackFile) {
  const std::string path = "/tmp/ca_report_test.csv";
  ASSERT_TRUE(write_csv(path, {{"a", "b"}, {"1", "2"}}));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(write_csv("/nonexistent_dir/x.csv", {{"a"}}));
}

TEST(KernelReport, FormatsCountersAndRate) {
  KernelCounters k;
  k.gemm_calls = 12;
  k.gemm_seconds = 0.5;
  k.gemm_flops = 1.0e9;  // 2 GFLOP/s over 0.5 s
  k.im2col_calls = 8;
  k.im2col_seconds = 0.0004;
  k.eltwise_calls = 3;
  const std::string line = format_kernel_report(k);
  EXPECT_NE(line.find("gemm 12 calls"), std::string::npos);
  EXPECT_NE(line.find("2.00 GFLOP/s"), std::string::npos);
  EXPECT_NE(line.find("im2col 8 calls"), std::string::npos);
  EXPECT_NE(line.find("eltwise 3 calls"), std::string::npos);
}

TEST(KernelReport, ZeroTimeHasZeroRate) {
  const std::string line = format_kernel_report(KernelCounters{});
  EXPECT_NE(line.find("0.00 GFLOP/s"), std::string::npos);
}

TEST(KernelReport, RowsMatchHeader) {
  KernelCounters k;
  k.gemm_calls = 2;
  k.gemm_seconds = 1.0;
  k.gemm_flops = 4.0e9;
  const auto rows = kernel_report_rows(k);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), rows[1].size());
  EXPECT_EQ(rows[0][0], "gemm_calls");
  EXPECT_EQ(rows[1][0], "2");
  EXPECT_EQ(rows[0][2], "gemm_gflops");
  EXPECT_EQ(rows[1][2], "4.000");
}

TEST(OpHistogram, RecordAccumulatesAndDeltaSubtracts) {
  OpHistogram h;
  h.record("conv2d", 0.010);
  h.record("conv2d", 0.005);
  h.record("dense", 0.002);
  ASSERT_EQ(h.ops().size(), 2u);
  EXPECT_EQ(h.ops().at("conv2d").calls, 2u);
  EXPECT_DOUBLE_EQ(h.ops().at("conv2d").seconds, 0.015);

  const OpHistogram snap = h;
  h.record("dense", 0.004);
  h.record("sgd_update", 0.001);
  const OpHistogram d = h.delta(snap);
  // conv2d did not move: dropped from the delta entirely.
  EXPECT_EQ(d.ops().count("conv2d"), 0u);
  EXPECT_EQ(d.ops().at("dense").calls, 1u);
  EXPECT_DOUBLE_EQ(d.ops().at("dense").seconds, 0.004);
  EXPECT_EQ(d.ops().at("sgd_update").calls, 1u);
}

TEST(OpHistogram, SlowestNamesTheBiggestTimeSink) {
  OpHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.slowest().first, "");
  h.record("conv2d", 0.003);
  h.record("conv2d_bwd_weights", 0.009);
  h.record("relu", 0.001);
  EXPECT_EQ(h.slowest().first, "conv2d_bwd_weights");
  EXPECT_EQ(h.slowest().second.calls, 1u);
}

TEST(OpHistogram, FormatLeadsWithTheSlowestOp) {
  OpHistogram h;
  h.record("conv2d", 0.003);
  h.record("conv2d_bwd_weights", 0.009);
  const std::string line = format_op_histogram(h);
  EXPECT_EQ(line.find("slowest op conv2d_bwd_weights"), 0u) << line;
  EXPECT_NE(line.find("conv2d 1 calls"), std::string::npos) << line;
  EXPECT_EQ(format_op_histogram(OpHistogram{}), "no kernel ops recorded");
}

TEST(OpHistogram, RowsDescendBySeconds) {
  OpHistogram h;
  h.record("a_fast", 0.001);
  h.record("z_slow", 0.020);
  h.record("m_mid", 0.010);
  const auto rows = op_histogram_rows(h);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0], "op");
  EXPECT_EQ(rows[1][0], "z_slow");
  EXPECT_EQ(rows[2][0], "m_mid");
  EXPECT_EQ(rows[3][0], "a_fast");
}

TEST(AllocatorReport, FormatsHitRateAndChurn) {
  AllocatorCounters a;
  a.total_allocs = 1000;
  a.total_frees = 900;
  a.failed_allocs = 2;
  a.splits = 411;
  a.coalesces = 387;
  a.bin_exact_hits = 750;
  a.bin_spill_allocs = 250;
  a.fragmentation = 0.12;
  const std::string line = format_allocator_report(a);
  EXPECT_NE(line.find("allocs 1000 (75.0% bin-exact)"), std::string::npos)
      << line;
  EXPECT_NE(line.find("splits 411"), std::string::npos);
  EXPECT_NE(line.find("coalesces 387"), std::string::npos);
  EXPECT_NE(line.find("frag 0.12"), std::string::npos);

  const auto rows = allocator_report_rows(a);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), rows[1].size());
  EXPECT_EQ(rows[0][7], "exact_hit_rate");
  EXPECT_EQ(rows[1][7], "0.7500");
}

}  // namespace
}  // namespace ca::telemetry
