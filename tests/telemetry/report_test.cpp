#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ca::telemetry {
namespace {

TEST(Csv, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.5s"), "1.5s");
}

TEST(Csv, CommasAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesAreQuoted) {
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, TableSerialization) {
  const auto csv = to_csv({{"model", "time"}, {"ResNet 200", "1,000s"}});
  EXPECT_EQ(csv, "model,time\nResNet 200,\"1,000s\"\n");
}

TEST(Csv, EmptyTable) { EXPECT_EQ(to_csv({}), ""); }

TEST(Csv, WriteAndReadBackFile) {
  const std::string path = "/tmp/ca_report_test.csv";
  ASSERT_TRUE(write_csv(path, {{"a", "b"}, {"1", "2"}}));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(write_csv("/nonexistent_dir/x.csv", {{"a"}}));
}

TEST(KernelReport, FormatsCountersAndRate) {
  KernelCounters k;
  k.gemm_calls = 12;
  k.gemm_seconds = 0.5;
  k.gemm_flops = 1.0e9;  // 2 GFLOP/s over 0.5 s
  k.im2col_calls = 8;
  k.im2col_seconds = 0.0004;
  k.eltwise_calls = 3;
  const std::string line = format_kernel_report(k);
  EXPECT_NE(line.find("gemm 12 calls"), std::string::npos);
  EXPECT_NE(line.find("2.00 GFLOP/s"), std::string::npos);
  EXPECT_NE(line.find("im2col 8 calls"), std::string::npos);
  EXPECT_NE(line.find("eltwise 3 calls"), std::string::npos);
}

TEST(KernelReport, ZeroTimeHasZeroRate) {
  const std::string line = format_kernel_report(KernelCounters{});
  EXPECT_NE(line.find("0.00 GFLOP/s"), std::string::npos);
}

TEST(KernelReport, RowsMatchHeader) {
  KernelCounters k;
  k.gemm_calls = 2;
  k.gemm_seconds = 1.0;
  k.gemm_flops = 4.0e9;
  const auto rows = kernel_report_rows(k);
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), rows[1].size());
  EXPECT_EQ(rows[0][0], "gemm_calls");
  EXPECT_EQ(rows[1][0], "2");
  EXPECT_EQ(rows[0][2], "gemm_gflops");
  EXPECT_EQ(rows[1][2], "4.000");
}

}  // namespace
}  // namespace ca::telemetry
