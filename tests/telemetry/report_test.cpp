#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace ca::telemetry {
namespace {

TEST(Csv, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("1.5s"), "1.5s");
}

TEST(Csv, CommasAreQuoted) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(Csv, QuotesAreDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, NewlinesAreQuoted) {
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, TableSerialization) {
  const auto csv = to_csv({{"model", "time"}, {"ResNet 200", "1,000s"}});
  EXPECT_EQ(csv, "model,time\nResNet 200,\"1,000s\"\n");
}

TEST(Csv, EmptyTable) { EXPECT_EQ(to_csv({}), ""); }

TEST(Csv, WriteAndReadBackFile) {
  const std::string path = "/tmp/ca_report_test.csv";
  ASSERT_TRUE(write_csv(path, {{"a", "b"}, {"1", "2"}}));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(write_csv("/nonexistent_dir/x.csv", {{"a"}}));
}

}  // namespace
}  // namespace ca::telemetry
