#include "util/intrusive_list.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ca::util {
namespace {

struct Item {
  int value = 0;
  ListHook hook;
};

using List = IntrusiveList<Item, &Item::hook>;

std::vector<int> values(List& list) {
  std::vector<int> out;
  list.for_each([&](Item& i) { out.push_back(i.value); });
  return out;
}

TEST(IntrusiveList, StartsEmpty) {
  List list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.front(), nullptr);
  EXPECT_EQ(list.back(), nullptr);
  EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, PushFrontOrder) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_front(a);
  list.push_front(b);
  list.push_front(c);
  EXPECT_EQ(values(list), (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(list.front()->value, 3);
  EXPECT_EQ(list.back()->value, 1);
}

TEST(IntrusiveList, PushBackOrder) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(values(list), (std::vector<int>{1, 2, 3}));
}

TEST(IntrusiveList, EraseMiddle) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.erase(b);
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(b.hook.linked());
}

TEST(IntrusiveList, EraseUnlinkedIsNoop) {
  List list;
  Item a{1, {}};
  list.erase(a);  // not on the list
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, PopBackReturnsColdest) {
  List list;
  Item a{1, {}}, b{2, {}};
  list.push_front(a);
  list.push_front(b);
  EXPECT_EQ(list.pop_back()->value, 1);
  EXPECT_EQ(list.pop_back()->value, 2);
  EXPECT_EQ(list.pop_back(), nullptr);
}

TEST(IntrusiveList, MoveToFrontImplementsLruTouch) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_front(c);
  EXPECT_EQ(values(list), (std::vector<int>{3, 1, 2}));
  list.move_to_front(c);  // already at front
  EXPECT_EQ(values(list), (std::vector<int>{3, 1, 2}));
}

TEST(IntrusiveList, MoveToBackImplementsArchive) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.move_to_back(a);
  EXPECT_EQ(values(list), (std::vector<int>{2, 3, 1}));
}

TEST(IntrusiveList, DoublePushThrows) {
  List list;
  Item a{1, {}};
  list.push_back(a);
  EXPECT_THROW(list.push_back(a), InternalError);
}

TEST(IntrusiveList, ReinsertAfterErase) {
  List list;
  Item a{1, {}};
  list.push_back(a);
  list.erase(a);
  list.push_front(a);
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.front(), &a);
}

TEST(IntrusiveList, ForEachAllowsErasingCurrent) {
  List list;
  Item a{1, {}}, b{2, {}}, c{3, {}};
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  list.for_each([&](Item& i) {
    if (i.value == 2) list.erase(i);
  });
  EXPECT_EQ(values(list), (std::vector<int>{1, 3}));
}

}  // namespace
}  // namespace ca::util
