#include "util/align.hpp"

#include <gtest/gtest.h>

namespace ca::util {
namespace {

TEST(Align, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
  EXPECT_TRUE(is_pow2(std::size_t{1} << 63));
}

TEST(Align, AlignUpBasics) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
}

TEST(Align, AlignDownBasics) {
  EXPECT_EQ(align_down(0, 64), 0u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(127, 64), 64u);
}

TEST(Align, AlignUpIsIdempotent) {
  for (std::size_t x : {std::size_t{0}, std::size_t{7}, std::size_t{100},
                        std::size_t{4095}, std::size_t{4096}}) {
    const std::size_t once = align_up(x, 4096);
    EXPECT_EQ(align_up(once, 4096), once);
    EXPECT_TRUE(is_aligned(once, 4096));
    EXPECT_GE(once, x);
    EXPECT_LT(once - x, std::size_t{4096});
  }
}

TEST(Align, PointerAlignment) {
  alignas(64) char buf[128];
  EXPECT_TRUE(is_aligned(static_cast<void*>(buf), 64));
  EXPECT_FALSE(is_aligned(static_cast<void*>(buf + 1), 64));
}

TEST(Align, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
}

TEST(Align, ByteUnits) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

}  // namespace
}  // namespace ca::util
