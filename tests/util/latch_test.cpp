// CompletionLatch: the parallel_for rendezvous.  These tests run in every
// build; under -DCA_RACE=ON ("race.Latch*" via test_util in the race
// stage) every atomic op and cv wait is a deterministic schedule point, so
// the explorer can drive the waiter/arriver interleavings (including the
// park-then-arrive window the seq_cst handshake closes).  Under TSan the
// plain-array publish tests check the arrive->wait happens-before edge.
#include <cstddef>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "race/sync.hpp"
#include "util/completion_latch.hpp"
#include "util/threadpool.hpp"

namespace {

using ca::util::CompletionLatch;
using ca::util::ThreadPool;

TEST(Latch, ZeroCountIsImmediatelyDone) {
  CompletionLatch latch(0);
  EXPECT_TRUE(latch.done());
  latch.wait();  // must not block
}

TEST(Latch, ArriveBeforeWaitDoesNotBlock) {
  CompletionLatch latch(3);
  EXPECT_FALSE(latch.done());
  latch.arrive();
  latch.arrive(2);
  EXPECT_TRUE(latch.done());
  latch.wait();
}

TEST(Latch, PublishesWorkAcrossThreads) {
  // Each spawned thread writes a plain (non-atomic) slot before arriving;
  // the waiter reads every slot after wait().  The latch's release/acquire
  // chain is the only thing making that read safe -- TSan and the CA_RACE
  // vector clocks both verify the edge.
  constexpr std::size_t kThreads = 4;
  CompletionLatch latch(kThreads);
  std::vector<std::size_t> slots(kThreads, 0);

  std::vector<std::thread> threads;
  std::vector<ca::sync::spawn_token> tokens;
  const std::size_t mark = ca::sync::adoption_mark();
  for (std::size_t t = 0; t < kThreads; ++t) {
    const ca::sync::spawn_token token = ca::sync::before_spawn();
    tokens.push_back(token);
    threads.emplace_back([&slots, &latch, t, token] {
      ca::sync::task_scope scope(token);
      slots[t] = t + 1;
      latch.arrive();
    });
  }
  ca::sync::await_adoptions(mark + kThreads);

  latch.wait();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(slots[t], t + 1);
  }
  for (std::size_t t = 0; t < kThreads; ++t) {
    ca::sync::join_thread(threads[t], tokens[t]);
  }
}

TEST(Latch, MultiUnitArrivalsFromPool) {
  // parallel_for-shaped usage: the latch counts elements, producers retire
  // variable-sized chunks.
  ThreadPool pool(3);
  constexpr std::size_t kUnits = 100;
  CompletionLatch latch(kUnits);
  for (std::size_t chunk : {std::size_t{40}, std::size_t{35}, std::size_t{25}}) {
    pool.submit([&latch, chunk] { latch.arrive(chunk); });
  }
  latch.wait();
  EXPECT_TRUE(latch.done());
  pool.wait_idle();
}

TEST(Latch, MultipleWaitersAllRelease) {
  ThreadPool pool(2);
  CompletionLatch gate(1);
  CompletionLatch released(2);
  for (int w = 0; w < 2; ++w) {
    pool.submit([&gate, &released] {
      gate.wait();
      released.arrive();
    });
  }
  gate.arrive();
  released.wait();
  pool.wait_idle();
}

TEST(Latch, ParallelForStillCoversEveryElement) {
  // End-to-end through the new rendezvous: every index covered exactly
  // once, across a size sweep straddling the inline/grain thresholds.
  ThreadPool pool(4);
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{100}, std::size_t{4096},
        std::size_t{4097}, std::size_t{100000}}) {
    std::vector<int> hits(n, 0);
    pool.parallel_for(
        n,
        [&hits](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) ++hits[i];
        },
        /*min_grain=*/64);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i], 1) << "element " << i << " of " << n;
    }
  }
}

}  // namespace
