#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ca::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, ParallelForUnevenSplit) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(7, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 7u);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<long long> sum{0};
  pool.parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SequentialParallelForsAreIndependent) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
      n.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(n.load(), 100);
  }
}

}  // namespace
}  // namespace ca::util
