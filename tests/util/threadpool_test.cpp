#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace ca::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 1);
}

TEST(ThreadPool, ParallelForUnevenSplit) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(7, [&](std::size_t begin, std::size_t end) {
    total.fetch_add(end - begin);
  });
  EXPECT_EQ(total.load(), 7u);
}

TEST(ThreadPool, ParallelForComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<int> data(10000);
  std::iota(data.begin(), data.end(), 1);
  std::atomic<long long> sum{0};
  pool.parallel_for(data.size(), [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) local += data[i];
    sum.fetch_add(local);
  });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, SequentialParallelForsAreIndependent) {
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
      n.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(n.load(), 100);
  }
}

// --- grain heuristic ---------------------------------------------------------

TEST(ThreadPool, ParallelForBelowMinGrainEnqueuesNothing) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_enqueued();
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(ThreadPool::kDefaultMinGrain,
                    [&](std::size_t begin, std::size_t end) {
                      covered.fetch_add(end - begin);
                    });
  EXPECT_EQ(covered.load(), ThreadPool::kDefaultMinGrain);
  EXPECT_EQ(pool.tasks_enqueued(), before);  // ran inline on the caller
}

TEST(ThreadPool, ParallelForAboveMinGrainGoesWide) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_enqueued();
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(4 * ThreadPool::kDefaultMinGrain,
                    [&](std::size_t begin, std::size_t end) {
                      covered.fetch_add(end - begin);
                    });
  EXPECT_EQ(covered.load(), 4 * ThreadPool::kDefaultMinGrain);
  EXPECT_GT(pool.tasks_enqueued(), before);
}

TEST(ThreadPool, ParallelForCustomGrainEnqueuesForSmallRanges) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_enqueued();
  std::atomic<std::size_t> covered{0};
  // min_grain=1: even an 8-element range is worth distributing (the caller
  // declares each element expensive, e.g. one conv image).
  pool.parallel_for(
      8,
      [&](std::size_t begin, std::size_t end) {
        covered.fetch_add(end - begin);
      },
      1);
  EXPECT_EQ(covered.load(), 8u);
  EXPECT_GT(pool.tasks_enqueued(), before);
}

TEST(ThreadPool, SingleWorkerPoolAlwaysRunsInline) {
  ThreadPool pool(1);
  const std::uint64_t before = pool.tasks_enqueued();
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(
      100000,
      [&](std::size_t begin, std::size_t end) {
        covered.fetch_add(end - begin);
      },
      1);
  EXPECT_EQ(covered.load(), 100000u);
  EXPECT_EQ(pool.tasks_enqueued(), before);
}

TEST(ThreadPool, GrainForScalesInverselyWithWork) {
  EXPECT_EQ(ThreadPool::grain_for(0), ThreadPool::kDefaultMinGrain);
  EXPECT_EQ(ThreadPool::grain_for(1), ThreadPool::kDefaultMinGrain);
  EXPECT_EQ(ThreadPool::grain_for(2), ThreadPool::kDefaultMinGrain / 2);
  // Heavier-than-grain work items always qualify for distribution.
  EXPECT_EQ(ThreadPool::grain_for(2 * ThreadPool::kDefaultMinGrain), 1u);
}

// --- parallel_for_2d ---------------------------------------------------------

TEST(ThreadPool, ParallelFor2dSmallRunsAsOneInlineCall) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.tasks_enqueued();
  std::atomic<int> calls{0};
  pool.parallel_for_2d(8, 8,
                       [&](std::size_t y0, std::size_t y1, std::size_t x0,
                           std::size_t x1) {
                         EXPECT_EQ(y0, 0u);
                         EXPECT_EQ(y1, 8u);
                         EXPECT_EQ(x0, 0u);
                         EXPECT_EQ(x1, 8u);
                         calls.fetch_add(1);
                       });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(pool.tasks_enqueued(), before);
}

TEST(ThreadPool, ParallelFor2dCoversEveryCellExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t ny = 37, nx = 211;
  std::vector<std::atomic<int>> hits(ny * nx);
  pool.parallel_for_2d(
      ny, nx,
      [&](std::size_t y0, std::size_t y1, std::size_t x0, std::size_t x1) {
        for (std::size_t y = y0; y < y1; ++y) {
          for (std::size_t x = x0; x < x1; ++x) {
            hits[y * nx + x].fetch_add(1);
          }
        }
      },
      64);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelFor2dSplitsColumnsWhenRowsAreFew) {
  ThreadPool pool(4);
  // 2 rows cannot feed 4 workers by row-splitting alone: tiles must split x.
  const std::size_t ny = 2, nx = 64 * 1024;
  std::atomic<std::size_t> cells{0};
  std::atomic<bool> split_x{false};
  pool.parallel_for_2d(
      ny, nx,
      [&](std::size_t y0, std::size_t y1, std::size_t x0, std::size_t x1) {
        if (x1 - x0 < nx) split_x.store(true);
        cells.fetch_add((y1 - y0) * (x1 - x0));
      },
      1024);
  EXPECT_EQ(cells.load(), ny * nx);
  EXPECT_TRUE(split_x.load());
}

TEST(ThreadPool, ParallelFor2dZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_2d(0, 16,
                       [&](std::size_t, std::size_t, std::size_t,
                           std::size_t) { called = true; });
  pool.parallel_for_2d(16, 0,
                       [&](std::size_t, std::size_t, std::size_t,
                           std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

}  // namespace
}  // namespace ca::util
