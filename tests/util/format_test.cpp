#include "util/format.hpp"

#include <gtest/gtest.h>

#include "util/align.hpp"

namespace ca::util {
namespace {

TEST(Format, BytesPlain) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(17), "17 B");
  EXPECT_EQ(format_bytes(1023), "1023 B");
}

TEST(Format, BytesScaled) {
  EXPECT_EQ(format_bytes(KiB), "1.00 KiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(MiB), "1.00 MiB");
  EXPECT_EQ(format_bytes(GiB), "1.00 GiB");
  EXPECT_EQ(format_bytes(5 * GiB + 512 * MiB), "5.50 GiB");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.14159, 0), "3");
  EXPECT_EQ(format_fixed(-1.5, 1), "-1.5");
  EXPECT_EQ(format_fixed(0.0, 3), "0.000");
}

TEST(Format, TableAlignsColumns) {
  const auto out = render_table({{"name", "value"}, {"x", "1"}, {"long", "22"}});
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("long"), std::string::npos);
  // Header and separator and two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Format, EmptyTable) { EXPECT_EQ(render_table({}), ""); }

}  // namespace
}  // namespace ca::util
