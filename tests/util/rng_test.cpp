#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace ca::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversAllValues) {
  Xoshiro256 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Xoshiro256 rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, NormalMomentsAreStandard) {
  Xoshiro256 rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256>);
  SUCCEED();
}

}  // namespace
}  // namespace ca::util
