#include "sim/bandwidth.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ca::sim {
namespace {

TEST(BandwidthCurve, FlatCurve) {
  const auto c = BandwidthCurve::flat(100.0);
  EXPECT_DOUBLE_EQ(c.at(1), 100.0);
  EXPECT_DOUBLE_EQ(c.at(64), 100.0);
  EXPECT_DOUBLE_EQ(c.peak(), 100.0);
}

TEST(BandwidthCurve, ExactControlPoints) {
  const BandwidthCurve c{{1, 10.0}, {4, 40.0}, {8, 80.0}};
  EXPECT_DOUBLE_EQ(c.at(1), 10.0);
  EXPECT_DOUBLE_EQ(c.at(4), 40.0);
  EXPECT_DOUBLE_EQ(c.at(8), 80.0);
}

TEST(BandwidthCurve, LinearInterpolation) {
  const BandwidthCurve c{{1, 10.0}, {5, 50.0}};
  EXPECT_DOUBLE_EQ(c.at(2), 20.0);
  EXPECT_DOUBLE_EQ(c.at(3), 30.0);
  EXPECT_DOUBLE_EQ(c.at(4), 40.0);
}

TEST(BandwidthCurve, ClampedOutsideRange) {
  const BandwidthCurve c{{2, 20.0}, {8, 80.0}};
  EXPECT_DOUBLE_EQ(c.at(1), 20.0);
  EXPECT_DOUBLE_EQ(c.at(100), 80.0);
}

TEST(BandwidthCurve, DecreasingCurveModelsNvramWrites) {
  // NVRAM write bandwidth peaks at low parallelism and then degrades.
  const BandwidthCurve c{{1, 4.0}, {4, 8.0}, {16, 5.0}, {32, 4.0}};
  EXPECT_GT(c.at(4), c.at(1));
  EXPECT_GT(c.at(4), c.at(16));
  EXPECT_GT(c.at(16), c.at(32));
  EXPECT_DOUBLE_EQ(c.peak(), 8.0);
  EXPECT_EQ(c.best_threads(), 4u);
}

TEST(BandwidthCurve, NonIncreasingThreadOrderThrows) {
  EXPECT_THROW((BandwidthCurve{{4, 1.0}, {2, 2.0}}), InternalError);
  EXPECT_THROW((BandwidthCurve{{4, 1.0}, {4, 2.0}}), InternalError);
}

TEST(BandwidthCurve, NonPositiveBandwidthThrows) {
  EXPECT_THROW((BandwidthCurve{{1, 0.0}}), InternalError);
  EXPECT_THROW((BandwidthCurve{{1, -5.0}}), InternalError);
}

TEST(BandwidthCurve, InterpolationIsMonotonicBetweenPoints) {
  const BandwidthCurve c{{1, 10.0}, {8, 80.0}, {16, 40.0}};
  double prev = c.at(1);
  for (std::size_t t = 2; t <= 8; ++t) {
    EXPECT_GE(c.at(t), prev);
    prev = c.at(t);
  }
  for (std::size_t t = 9; t <= 16; ++t) {
    EXPECT_LE(c.at(t), prev);
    prev = c.at(t);
  }
}

}  // namespace
}  // namespace ca::sim
