// Tests for the CXL and three-tier platform presets (§VI: "when migrating
// an application to a new heterogeneous memory platform, the user-defined
// policy does not have to be modified").
#include <gtest/gtest.h>

#include "core/cached_array.hpp"
#include "policy/lru_policy.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca::sim {
namespace {

TEST(CxlPlatform, ShapeAndRoles) {
  const auto p = Platform::cxl_scaled(64 * util::MiB, 512 * util::MiB);
  ASSERT_EQ(p.devices.size(), 2u);
  EXPECT_EQ(p.devices[0].kind, DeviceKind::kDram);
  EXPECT_EQ(p.devices[1].kind, DeviceKind::kNvram);  // slow-tier role
  EXPECT_EQ(p.devices[0].capacity, 64 * util::MiB);
  EXPECT_EQ(p.devices[1].capacity, 512 * util::MiB);
}

TEST(CxlPlatform, RemoteMemoryIsSymmetric) {
  const auto p = Platform::cxl_scaled(64 * util::MiB, 512 * util::MiB);
  const auto& remote = p.spec(kSlow);
  for (std::size_t t : {1u, 4u, 8u, 16u}) {
    EXPECT_DOUBLE_EQ(remote.read_bw.at(t), remote.write_bw_nt.at(t));
    EXPECT_DOUBLE_EQ(remote.write_bw.at(t), remote.write_bw_nt.at(t));
  }
}

TEST(CxlPlatform, LocalFasterThanRemote) {
  const auto p = Platform::cxl_scaled(64 * util::MiB, 512 * util::MiB);
  for (std::size_t t : {1u, 4u, 8u, 16u}) {
    EXPECT_GT(p.spec(kFast).read_bw.at(t), p.spec(kSlow).read_bw.at(t));
  }
  EXPECT_GT(p.spec(kSlow).op_latency_s, p.spec(kFast).op_latency_s);
}

TEST(CxlPlatform, UnmodifiedPolicyRunsOnCxl) {
  // The paper's separation-of-concerns claim: the same LruPolicy, with no
  // changes, manages a CXL platform -- only the platform spec differs.
  core::Runtime rt(
      Platform::cxl_scaled(256 * util::KiB, 8 * util::MiB),
      [](dm::DataManager& dm) {
        return std::make_unique<policy::LruPolicy>(
            dm, policy::LruPolicyConfig{.min_migratable = 0});
      });
  // Fill local memory; the policy spills to the CXL expander.
  std::vector<core::CachedArray<int>> arrays;
  for (int i = 0; i < 8; ++i) {
    arrays.emplace_back(rt, 16 * 1024, "a" + std::to_string(i));
    arrays.back().with_write([i](std::span<int> s) { s[0] = i; });
  }
  std::size_t local = 0, remote = 0;
  for (const auto& a : arrays) {
    const auto dev = rt.manager().getprimary(*a.object())->device();
    (dev == kFast ? local : remote) += 1;
  }
  EXPECT_GT(local, 0u);
  EXPECT_GT(remote, 0u);
  // Data intact wherever it lives.
  for (int i = 0; i < 8; ++i) {
    arrays[static_cast<std::size_t>(i)].with_read(
        [i](std::span<const int> s) { EXPECT_EQ(s[0], i); });
  }
}

TEST(ThreeTierPlatform, ShapeAndOrdering) {
  const auto p = Platform::three_tier_scaled(
      32 * util::MiB, 128 * util::MiB, 1024 * util::MiB);
  ASSERT_EQ(p.devices.size(), 3u);
  EXPECT_EQ(p.devices[0].capacity, 32 * util::MiB);
  EXPECT_EQ(p.devices[1].capacity, 128 * util::MiB);
  EXPECT_EQ(p.devices[2].capacity, 1024 * util::MiB);
  // Strictly faster as you go up.
  for (std::size_t t : {1u, 4u, 8u}) {
    EXPECT_GT(p.devices[0].read_bw.at(t), p.devices[1].read_bw.at(t));
    EXPECT_GT(p.devices[1].read_bw.at(t), p.devices[2].read_bw.at(t));
  }
}

}  // namespace
}  // namespace ca::sim
