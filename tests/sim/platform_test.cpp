#include "sim/platform.hpp"

#include <gtest/gtest.h>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::sim {
namespace {

TEST(Platform, DefaultPresetShape) {
  const auto p = Platform::cascade_lake_default();
  ASSERT_EQ(p.devices.size(), 2u);
  EXPECT_EQ(p.devices[0].kind, DeviceKind::kDram);
  EXPECT_EQ(p.devices[1].kind, DeviceKind::kNvram);
  EXPECT_EQ(p.devices[0].capacity, 180 * util::MiB);
  EXPECT_EQ(p.devices[1].capacity, 1300 * util::MiB);
}

TEST(Platform, FastSlowAliasesMatchKinds) {
  const auto p = Platform::cascade_lake_default();
  EXPECT_EQ(p.find_kind(DeviceKind::kDram), kFast);
  EXPECT_EQ(p.find_kind(DeviceKind::kNvram), kSlow);
}

TEST(Platform, NvramWriteSlowerThanRead) {
  const auto p = Platform::cascade_lake_default();
  const auto& nvram = p.spec(kSlow);
  for (std::size_t t : {1u, 4u, 8u, 16u}) {
    EXPECT_LT(nvram.write_bw_nt.at(t), nvram.read_bw.at(t));
  }
}

TEST(Platform, NvramWriteBandwidthDegradesWithParallelism) {
  const auto p = Platform::cascade_lake_default();
  const auto& nvram = p.spec(kSlow);
  EXPECT_GT(nvram.write_bw_nt.at(4), nvram.write_bw_nt.at(16));
  EXPECT_GT(nvram.write_bw_nt.at(4), nvram.write_bw_nt.at(32));
}

TEST(Platform, NonTemporalStoresAreCrucialForNvram) {
  const auto p = Platform::cascade_lake_default();
  const auto& nvram = p.spec(kSlow);
  for (std::size_t t : {1u, 4u, 16u}) {
    EXPECT_LT(nvram.write_bw.at(t), 0.6 * nvram.write_bw_nt.at(t));
  }
}

TEST(Platform, DramFasterThanNvramEverywhere) {
  const auto p = Platform::cascade_lake_default();
  const auto& dram = p.spec(kFast);
  const auto& nvram = p.spec(kSlow);
  for (std::size_t t : {1u, 4u, 8u, 16u}) {
    EXPECT_GT(dram.read_bw.at(t), nvram.read_bw.at(t));
    EXPECT_GT(dram.write_bw_nt.at(t), nvram.write_bw_nt.at(t));
  }
}

TEST(Platform, NvramReadNotMuchSlowerThanDramAtLowParallelism) {
  // Paper: "Reads to NVRAM are not much slower than DRAM" -- within ~2.5x
  // in the regime kernels operate in.
  const auto p = Platform::cascade_lake_default();
  EXPECT_LT(p.spec(kFast).read_bw.at(1) / p.spec(kSlow).read_bw.at(1), 2.5);
}

TEST(Platform, CustomCapacities) {
  const auto p = Platform::cascade_lake_scaled(10 * util::MiB, 50 * util::MiB);
  EXPECT_EQ(p.spec(kFast).capacity, 10 * util::MiB);
  EXPECT_EQ(p.spec(kSlow).capacity, 50 * util::MiB);
}

TEST(Platform, FindKindThrowsWhenAbsent) {
  Platform p;
  p.devices.push_back(Platform::cascade_lake_default().devices[0]);
  EXPECT_THROW(p.find_kind(DeviceKind::kNvram), UsageError);
}

TEST(Platform, DeviceKindNames) {
  EXPECT_STREQ(to_string(DeviceKind::kDram), "DRAM");
  EXPECT_STREQ(to_string(DeviceKind::kNvram), "NVRAM");
}

}  // namespace
}  // namespace ca::sim
