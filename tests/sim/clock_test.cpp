#include "sim/clock.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace ca::sim {
namespace {

TEST(Clock, StartsAtZero) {
  Clock c;
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_DOUBLE_EQ(c.spent(TimeCategory::kCompute), 0.0);
}

TEST(Clock, AdvanceAccumulates) {
  Clock c;
  c.advance(1.5, TimeCategory::kCompute);
  c.advance(0.5, TimeCategory::kMovement);
  EXPECT_DOUBLE_EQ(c.now(), 2.0);
  EXPECT_DOUBLE_EQ(c.spent(TimeCategory::kCompute), 1.5);
  EXPECT_DOUBLE_EQ(c.spent(TimeCategory::kMovement), 0.5);
}

TEST(Clock, CategoriesSumToTotal) {
  Clock c;
  c.advance(1.0, TimeCategory::kCompute);
  c.advance(2.0, TimeCategory::kMovement);
  c.advance(3.0, TimeCategory::kGc);
  c.advance(4.0, TimeCategory::kOther);
  const double sum = c.spent(TimeCategory::kCompute) +
                     c.spent(TimeCategory::kMovement) +
                     c.spent(TimeCategory::kGc) +
                     c.spent(TimeCategory::kOther);
  EXPECT_DOUBLE_EQ(sum, c.now());
}

TEST(Clock, NegativeAdvanceThrows) {
  Clock c;
  EXPECT_THROW(c.advance(-0.1, TimeCategory::kCompute), InternalError);
}

TEST(Clock, ZeroAdvanceAllowed) {
  Clock c;
  c.advance(0.0, TimeCategory::kCompute);
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
}

TEST(Clock, ResetClearsEverything) {
  Clock c;
  c.advance(5.0, TimeCategory::kGc);
  c.reset();
  EXPECT_DOUBLE_EQ(c.now(), 0.0);
  EXPECT_DOUBLE_EQ(c.spent(TimeCategory::kGc), 0.0);
}

}  // namespace
}  // namespace ca::sim
