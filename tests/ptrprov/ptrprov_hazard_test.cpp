// Injected pin-discipline hazards under the schedule explorer: the
// DataManagerTestPeer drops an object's pins while a PinnedSpan is live,
// then defragment (relocation) or evictfrom (relocate-and-free) moves the
// bytes underneath it, and these tests assert ca::ptrprov flags the stale
// dereference in EVERY explored schedule (the checks are program-order
// evidence -- generation mismatch and free tombstones -- so the findings do
// not depend on the interleaving), with seed-replayable reports.  The
// sanctioned accessor paths must come back clean under the same
// exploration.
//
// Requires CA_RACE (the explorer) which implies CA_PTRPROV_ENABLED;
// self-skips elsewhere.
#include <gtest/gtest.h>

#if !defined(CA_RACE)

TEST(PtrprovHazards, InstrumentationRequired) {
  GTEST_SKIP() << "CA_RACE instrumentation not compiled in; configure with "
                  "-DCA_RACE=ON to run the ptrprov hazard scenarios";
}

#else  // CA_RACE

#include <cstdio>
#include <string>
#include <vector>

#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "ptrprov/ptrprov.hpp"
#include "ptrprov_test_peer.hpp"
#include "race/explorer.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

using ptrprov::ProvenanceReport;

/// One worker per pool so the explored task set is host-independent
/// (matches tests/race/race_hazard_test.cpp).
sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

/// Run `scenario` under the explorer and count, per schedule, whether
/// ptrprov produced at least one report of `kind`.  Reports are drained
/// inside the scenario (after the workload) so each schedule is scored
/// independently even though the observed-site ledger persists across them.
struct HazardSweep {
  race::ExplorerResult explorer;
  std::size_t flagged_schedules = 0;
  std::vector<std::string> first_reports;  ///< rendered, first schedule only
};

template <class Scenario>
HazardSweep sweep(std::size_t schedules, ProvenanceReport::Kind kind,
                  Scenario scenario) {
  ptrprov::reset_for_testing();
  HazardSweep out;
  race::ExplorerOptions opts;
  opts.schedules = schedules;
  opts.mix_strategies = false;
  opts.log_failures = false;
  out.explorer = race::explore(opts, [&] {
    scenario();
    bool flagged = false;
    for (const auto& report : ptrprov::take_reports()) {
      if (report.kind != kind) continue;
      flagged = true;
      if (out.flagged_schedules == 0) {
        out.first_reports.push_back(report.to_string());
      }
    }
    if (flagged) ++out.flagged_schedules;
  });
  return out;
}

/// Deliberate defragment-under-access: a live span on `moved`, pins dropped
/// behind the manager's back, then compaction slides the region into the
/// hole left by `hole` -- the span's pointer now addresses the wrong bytes.
/// A live async transfer provides schedule diversity.
void defrag_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);

  dm::Object* hole = dm.create_object(64 * util::KiB, "hole");
  dm.setprimary(*hole, *dm.allocate(sim::kFast, 64 * util::KiB));
  dm::Object* moved = dm.create_object(64 * util::KiB, "moved");
  dm.setprimary(*moved, *dm.allocate(sim::kFast, 64 * util::KiB));
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);

  {
    dm::PinnedSpan span = dm.access(*moved);
    dm.destroy_object(hole);                       // opens the hole
    dm::DataManagerTestPeer::force_unpin(*moved);  // the staged bug
    dm.defragment(sim::kFast);                     // slides `moved` down
    (void)span.data();                             // use-after-relocate
    dm::DataManagerTestPeer::set_pin(*moved, 1);   // so ~PinnedSpan is sane
  }
  dm.free(dst);
  dm.free(src);
  dm.destroy_object(moved);
}

/// Deliberate evictfrom-under-access: the eviction callback does the
/// standard relocate-and-free dance (slow copy, re-primary, free the fast
/// region) while a span still references the old storage -- its pointer now
/// dangles into freed heap.
void evict_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);

  dm::Object* victim = dm.create_object(64 * util::KiB, "victim");
  dm.setprimary(*victim, *dm.allocate(sim::kFast, 64 * util::KiB));
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);

  {
    dm::PinnedSpan span = dm.access(*victim);
    dm::DataManagerTestPeer::force_unpin(*victim);  // the staged bug
    const bool ok =
        dm.evictfrom(sim::kFast, 0, 64 * util::KiB, [&](dm::Region& region) {
          dm::Object* parent = dm.parent(region);
          if (parent == nullptr || parent->pinned()) return false;
          dm::Region* spill = dm.allocate(sim::kSlow, region.size());
          if (spill == nullptr) return false;
          dm.link(region, *spill);
          dm.copyto(*spill, region);
          dm.setprimary(*parent, *spill);
          dm.free(&region);
          return true;
        });
    EXPECT_TRUE(ok);
    (void)span.data();                              // use-after-free
    dm::DataManagerTestPeer::set_pin(*victim, 1);   // so ~PinnedSpan is sane
  }
  dm.free(dst);
  dm.free(src);
  dm.destroy_object(victim);
}

/// The fixed paths: spans held across the same defragment and eviction
/// pressure, but with the pins intact -- compaction must skip the pinned
/// device's span-holder only after release, eviction must refuse it.
void sanctioned_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);

  dm::Object* hole = dm.create_object(64 * util::KiB, "hole");
  dm.setprimary(*hole, *dm.allocate(sim::kFast, 64 * util::KiB));
  dm::Object* obj = dm.create_object(64 * util::KiB, "worker");
  dm.setprimary(*obj, *dm.allocate(sim::kFast, 64 * util::KiB));
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);

  {
    dm::PinnedSpan span = dm.access(*obj, /*write=*/true);
    dm.destroy_object(hole);
    // Eviction pressure while the span is live: the callback refuses every
    // candidate (the span-holder is pinned; the orphans host a live fill),
    // exactly as a policy must.
    (void)dm.evictfrom(sim::kFast, 0, 64 * util::KiB,
                       [](dm::Region&) { return false; });
    (void)span.data();
  }
  // Span released (pins back to zero): NOW compaction may move the region.
  dm.defragment(sim::kFast);
  {
    dm::PinnedSpan span = dm.access(*obj);
    (void)span.data();  // fresh span, fresh generation: clean
  }
  dm.free(dst);
  dm.free(src);
  dm.destroy_object(obj);
}

TEST(PtrprovHazards, DefragmentUnderAccessFlaggedInEverySchedule) {
  const auto result =
      sweep(1100, ProvenanceReport::Kind::kUseAfterRelocate, defrag_scenario);
  EXPECT_EQ(result.explorer.schedules_run, 1100u);
  EXPECT_GE(result.explorer.distinct_schedules, 1000u);
  // The stale dereference is generation evidence: the span recorded gen 0
  // at acquire, compaction bumped it, so the check fires in 100% of
  // schedules regardless of interleaving.
  EXPECT_EQ(result.flagged_schedules, result.explorer.schedules_run);
  // No vector-clock data race: the hazard is pure pointer provenance; the
  // detector that catches it must be ptrprov.
  EXPECT_EQ(result.explorer.failing_schedules, 0u);
  ASSERT_FALSE(result.first_reports.empty());
  const std::string& text = result.first_reports.front();
  EXPECT_NE(text.find("use-after-relocate"), std::string::npos);
  EXPECT_NE(text.find("moved"), std::string::npos);
  EXPECT_NE(text.find("defragment"), std::string::npos);
  EXPECT_NE(text.find("ptrprov_hazard_test.cpp"), std::string::npos);
  std::fprintf(stderr,
               "ca::ptrprov: defragment-under-access flagged in %zu/%zu "
               "schedules (%zu distinct)\n",
               result.flagged_schedules, result.explorer.schedules_run,
               result.explorer.distinct_schedules);
}

TEST(PtrprovHazards, EvictUnderAccessFlaggedInEverySchedule) {
  const auto result =
      sweep(1100, ProvenanceReport::Kind::kUseAfterFree, evict_scenario);
  EXPECT_EQ(result.explorer.schedules_run, 1100u);
  EXPECT_GE(result.explorer.distinct_schedules, 1000u);
  // The free tombstone is kept until the address is re-allocated, so the
  // dangling dereference is flagged in 100% of schedules.
  EXPECT_EQ(result.flagged_schedules, result.explorer.schedules_run);
  EXPECT_EQ(result.explorer.failing_schedules, 0u);
  ASSERT_FALSE(result.first_reports.empty());
  const std::string& text = result.first_reports.front();
  EXPECT_NE(text.find("use-after-free"), std::string::npos);
  EXPECT_NE(text.find("victim"), std::string::npos);
  EXPECT_NE(text.find("evictfrom"), std::string::npos);
  EXPECT_NE(text.find("ptrprov_hazard_test.cpp"), std::string::npos);
  std::fprintf(stderr,
               "ca::ptrprov: evictfrom-under-access flagged in %zu/%zu "
               "schedules (%zu distinct)\n",
               result.flagged_schedules, result.explorer.schedules_run,
               result.explorer.distinct_schedules);
}

TEST(PtrprovHazards, PinnedPathsAreCleanAcrossSchedules) {
  ptrprov::reset_for_testing();
  race::ExplorerOptions opts;
  opts.schedules = 300;
  std::size_t flagged = 0;
  const auto result = race::explore(opts, [&] {
    sanctioned_scenario();
    if (!ptrprov::take_reports().empty()) ++flagged;
  });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
  EXPECT_EQ(flagged, 0u);
  // Nothing leaked out of the scenarios either: every span was released.
  EXPECT_TRUE(ptrprov::active_spans().empty());
}

TEST(PtrprovHazards, ReportsReplayDeterministicallyFromSeed) {
  // Replay the same seed twice: the rendered provenance reports -- object,
  // sites, mutation op, generations, everything -- must match byte for
  // byte.  Reports carry no raw addresses, so this holds across runs.
  auto run_once = [](std::uint64_t seed) {
    ptrprov::reset_for_testing();
    std::vector<std::string> rendered;
    (void)race::replay(seed, race::Scheduler::Strategy::kPct, [&] {
      defrag_scenario();
      for (const auto& report : ptrprov::take_reports()) {
        rendered.push_back(report.to_string());
      }
    });
    return rendered;
  };
  const auto first = run_once(0x5EED0042u);
  const auto second = run_once(0x5EED0042u);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ca

#endif  // CA_RACE
