// Unit tests of the ca::ptrprov runtime half: the region-generation
// mirror, the PinnedSpan acquire/access/release lifecycle, and each of the
// four report kinds, driven through the real DataManager (no mocked
// registry).  Needs any CA_PTRPROV_ENABLED build (Debug, CA_RACE or
// -DCA_PTRPROV=ON); self-skips elsewhere.
#include <gtest/gtest.h>

#include "ptrprov/ptrprov.hpp"

#if !defined(CA_PTRPROV_ENABLED)

TEST(PtrprovRuntime, InstrumentationRequired) {
  GTEST_SKIP() << "CA_PTRPROV_ENABLED not compiled in; configure with "
                  "-DCA_PTRPROV=ON (or Debug / -DCA_RACE=ON) to run the "
                  "provenance runtime tests";
}

#else  // CA_PTRPROV_ENABLED

#include <string>
#include <vector>

#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "ptrprov_test_peer.hpp"
#include "sim/platform.hpp"
#include "telemetry/counters.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

using ptrprov::ProvenanceReport;

sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

struct Fixture {
  sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm{platform, clock, counters};

  Fixture() { ptrprov::reset_for_testing(); }

  dm::Object* make_object(const char* name, sim::DeviceId dev,
                          std::size_t bytes) {
    dm::Object* object = dm.create_object(bytes, name);
    dm::Region* region = dm.allocate(dev, bytes);
    EXPECT_NE(region, nullptr);
    dm.setprimary(*object, *region);
    return object;
  }
};

TEST(PtrprovRuntime, CleanSpanLifecycleProducesNoReports) {
  Fixture f;
  dm::Object* obj = f.make_object("clean", sim::kFast, 64 * util::KiB);
  {
    dm::PinnedSpan span = f.dm.access(*obj, /*write=*/true);
    ASSERT_TRUE(span.valid());
    EXPECT_TRUE(obj->pinned());
    EXPECT_NE(span.data(), nullptr);
    EXPECT_EQ(span.size_bytes(), 64 * util::KiB);
    EXPECT_EQ(ptrprov::held_spans().size(), 1u);
    EXPECT_EQ(ptrprov::active_spans().size(), 1u);
  }
  EXPECT_FALSE(obj->pinned());
  EXPECT_TRUE(ptrprov::held_spans().empty());
  EXPECT_TRUE(ptrprov::active_spans().empty());
  EXPECT_EQ(ptrprov::report_count(), 0u);
}

TEST(PtrprovRuntime, DefragmentBumpsGenerationAndFlagsStaleSpan) {
  Fixture f;
  // Two regions; freeing the first opens a hole so compaction moves the
  // second down.
  dm::Object* hole = f.make_object("hole", sim::kFast, 64 * util::KiB);
  dm::Object* moved = f.make_object("moved", sim::kFast, 64 * util::KiB);
  dm::Region* primary = moved->primary();
  EXPECT_EQ(primary->generation(), 0u);

  dm::PinnedSpan span = f.dm.access(*moved);
  f.dm.destroy_object(hole);
  dm::DataManagerTestPeer::force_unpin(*moved);  // the staged bug
  f.dm.defragment(sim::kFast);
  EXPECT_EQ(primary->generation(), 1u);
  dm::DataManagerTestPeer::set_pin(*moved, 1);

  (void)ptrprov::take_reports();  // drop anything staged above
  (void)span.data();              // use-after-relocate
  const auto reports = ptrprov::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ProvenanceReport::Kind::kUseAfterRelocate);
  EXPECT_EQ(reports[0].object, "moved");
  EXPECT_EQ(reports[0].mutation_op, "defragment");
  EXPECT_EQ(reports[0].gen_at_acquire, 0u);
  EXPECT_EQ(reports[0].gen_now, 1u);
  const std::string text = reports[0].to_string();
  EXPECT_NE(text.find("use-after-relocate"), std::string::npos);
  EXPECT_NE(text.find("defragment"), std::string::npos);
  EXPECT_NE(text.find("ptrprov_runtime_test.cpp"), std::string::npos);
}

TEST(PtrprovRuntime, FreeTombstoneFlagsUseAfterFree) {
  Fixture f;
  dm::Object* obj = f.make_object("freed", sim::kFast, 64 * util::KiB);
  dm::Region* primary = obj->primary();

  dm::PinnedSpan span = f.dm.access(*obj);
  dm::DataManagerTestPeer::force_unpin(*obj);
  f.dm.free(primary);
  dm::DataManagerTestPeer::set_pin(*obj, 1);

  (void)ptrprov::take_reports();
  (void)span.data();
  const auto reports = ptrprov::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ProvenanceReport::Kind::kUseAfterFree);
  EXPECT_EQ(reports[0].mutation_op, "free");

  // Manual cleanup: the span must not unpin through a freed-primary path
  // in teardown order the test controls anyway; reset explicitly.
  span.reset();
}

TEST(PtrprovRuntime, ReallocationAtSameAddressResetsTombstone) {
  Fixture f;
  dm::Object* obj = f.make_object("recycled", sim::kFast, 64 * util::KiB);
  dm::Region* first = obj->primary();
  dm::DataManagerTestPeer::set_pin(*obj, 0);
  f.dm.free(first);
  // The very next allocation of the same size lands on the same offset
  // (binned free list); a span on it must NOT inherit the tombstone.
  dm::Region* second = f.dm.allocate(sim::kFast, 64 * util::KiB);
  ASSERT_NE(second, nullptr);
  f.dm.setprimary(*obj, *second);
  dm::PinnedSpan span = f.dm.access(*obj);
  (void)span.data();
  EXPECT_EQ(ptrprov::report_count(), 0u);
}

TEST(PtrprovRuntime, UnpinUnderLiveSpanFlagsUseAfterUnpin) {
  Fixture f;
  dm::Object* obj = f.make_object("unpinned", sim::kFast, 64 * util::KiB);
  dm::PinnedSpan span = f.dm.access(*obj);
  dm::DataManagerTestPeer::force_unpin(*obj);
  (void)span.data();
  dm::DataManagerTestPeer::set_pin(*obj, 1);
  const auto reports = ptrprov::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ProvenanceReport::Kind::kUseAfterUnpin);
  EXPECT_EQ(reports[0].object, "unpinned");
}

TEST(PtrprovRuntime, ReleasedSpanIdAccessIsReported) {
  // The raw-hook contract (what a future accessor must uphold): touching a
  // span id after on_release names the original acquire site.
  ptrprov::reset_for_testing();
  int dummy_object = 0;
  int dummy_region = 0;
  const ptrprov::SpanId id = ptrprov::on_acquire(
      &dummy_object, &dummy_region, /*gen=*/0, /*pin_count=*/1, "raw",
      std::source_location::current());
  ptrprov::on_release(id);
  ptrprov::on_access(id, 1, std::source_location::current());
  const auto reports = ptrprov::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ProvenanceReport::Kind::kUseAfterUnpin);
  EXPECT_EQ(reports[0].object, "raw");
  EXPECT_NE(reports[0].acquire_site.find("ptrprov_runtime_test.cpp"),
            std::string::npos);
}

TEST(PtrprovRuntime, UnpinnedExtractIsFlaggedAtTheEscape) {
  Fixture f;
  dm::Object* obj = f.make_object("escapee", sim::kFast, 64 * util::KiB);
  ASSERT_FALSE(obj->pinned());
  (void)dm::DataManagerTestPeer::unpinned_extract(f.dm, *obj);
  const auto reports = ptrprov::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].kind, ProvenanceReport::Kind::kUnpinnedExtract);
  EXPECT_EQ(reports[0].object, "escapee");
  // The escape hook takes a defaulted source_location, so the report names
  // the extraction's call site -- this test -- not the accessor internals.
  EXPECT_NE(reports[0].acquire_site.find("ptrprov_runtime_test.cpp"),
            std::string::npos);
}

TEST(PtrprovRuntime, MovedFromSpanIsInertAndMoveKeepsTheRecord) {
  Fixture f;
  dm::Object* obj = f.make_object("mover", sim::kFast, 64 * util::KiB);
  dm::PinnedSpan a = f.dm.access(*obj);
  const ptrprov::SpanId id = a.span_id();
  dm::PinnedSpan b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): the contract
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.span_id(), id);
  (void)b.data();
  EXPECT_EQ(ptrprov::report_count(), 0u);
  EXPECT_EQ(obj->pin_count(), 1);  // exactly one pin survived the move
}

TEST(PtrprovRuntime, DumpListsObservedSitesDeterministically) {
  Fixture f;
  dm::Object* obj = f.make_object("dumped", sim::kFast, 64 * util::KiB);
  for (int i = 0; i < 2; ++i) {  // one source line, two acquisitions
    dm::PinnedSpan span = f.dm.access(*obj);
    (void)span.data();
  }
  const auto sites = ptrprov::observed_sites();
  ASSERT_EQ(sites.size(), 1u);  // same acquire site, deduplicated
  EXPECT_EQ(sites[0].kind, "acquire");
  EXPECT_EQ(sites[0].count, 2u);
  const std::string dump = ptrprov::dump_registry_json();
  EXPECT_NE(dump.find("\"kind\": \"acquire\""), std::string::npos);
  EXPECT_NE(dump.find("ptrprov_runtime_test.cpp"), std::string::npos);
  const std::string again = ptrprov::dump_registry_json();
  EXPECT_EQ(dump, again);
}

}  // namespace
}  // namespace ca

#endif  // CA_PTRPROV_ENABLED
