// The sanctioned routes stay clean: every data access the code base
// actually ships -- Runtime::resolve inside kernel brackets, CachedArray
// with_read/with_write, the DNN engine's argument spans -- runs through the
// provenance analyzer without a single report, and leaves behind exactly
// the observed-site ledger docs/pointer_provenance.json declares (the
// tools/ptrprov_check.py runtime diff consumes the dump this suite writes
// when CA_PTRPROV_DUMP is set).
//
// Needs any CA_PTRPROV_ENABLED build; self-skips elsewhere.
#include <gtest/gtest.h>

#include "ptrprov/ptrprov.hpp"

#if !defined(CA_PTRPROV_ENABLED)

TEST(PtrprovRoutes, InstrumentationRequired) {
  GTEST_SKIP() << "CA_PTRPROV_ENABLED not compiled in; configure with "
                  "-DCA_PTRPROV=ON (or Debug / -DCA_RACE=ON) to run the "
                  "provenance route tests";
}

#else  // CA_PTRPROV_ENABLED

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>

#include "core/cached_array.hpp"
#include "core/runtime.hpp"
#include "dnn/engine.hpp"
#include "dnn/harness.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

core::Runtime::PolicyFactory lru_factory() {
  return [](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, policy::LruPolicyConfig{});
  };
}

sim::Platform small_platform() {
  return sim::Platform::cascade_lake_scaled(256 * util::KiB, 1 * util::MiB);
}

dnn::HarnessConfig real_cfg() {
  dnn::HarnessConfig cfg;
  cfg.mode = dnn::Mode::kCaLM;
  cfg.dram_bytes = 8 * util::MiB;
  cfg.nvram_bytes = 32 * util::MiB;
  cfg.backend = dnn::Backend::kReal;
  return cfg;
}

/// Exercise every sanctioned accessor route in one process so the
/// observed-site ledger matches what the manifest declares.
void run_sanctioned_workloads() {
  // Route 1: the raw escape -- Runtime::resolve inside a kernel bracket
  // (the one sanctioned way to hold a bare pointer).
  {
    core::Runtime rt(small_platform(), lru_factory());
    dm::Object& obj = rt.new_object(64 * util::KiB, "bracketed");
    dm::Object* args[] = {&obj};
    rt.begin_kernel(args);
    std::byte* p = rt.resolve(obj, /*write=*/true);
    ASSERT_NE(p, nullptr);
    p[0] = std::byte{0x5A};
    rt.end_kernel(args);
    rt.release(obj);
    rt.gc_collect();
  }
  // Route 2: CachedArray bracketed access (PinnedSpan under the hood),
  // including a policy-driven defragment between brackets -- fresh spans
  // see the new generation, so this must be silent.
  {
    core::Runtime rt(small_platform(), lru_factory());
    core::CachedArray<float> a(rt, 4096, "route");
    a.with_write([](std::span<float> s) {
      for (std::size_t i = 0; i < s.size(); ++i) {
        s[i] = static_cast<float>(i);
      }
    });
    rt.defragment_all();
    a.with_read([](std::span<const float> s) {
      EXPECT_FLOAT_EQ(s[1], 1.0f);
      EXPECT_FLOAT_EQ(s[4095], 4095.0f);
    });
  }
  // Route 3: the DNN engine's per-argument spans.
  {
    dnn::Harness h(real_cfg());
    auto& e = h.engine();
    dnn::Tensor x = e.tensor({64});
    e.fill_const(x, 1.5f);
    dnn::Tensor y = e.relu(x);
    y.array().with_read([](std::span<const float> s) {
      for (const float v : s) EXPECT_FLOAT_EQ(v, 1.5f);
    });
  }
}

TEST(PtrprovRoutes, SanctionedWorkloadsProduceNoReports) {
  ptrprov::reset_for_testing();
  run_sanctioned_workloads();
  const auto reports = ptrprov::take_reports();
  for (const auto& report : reports) {
    ADD_FAILURE() << "unexpected provenance report: " << report.to_string();
  }
  EXPECT_TRUE(ptrprov::active_spans().empty());
}

TEST(PtrprovRoutes, ObservedSitesCoverTheDeclaredAccessors) {
  ptrprov::reset_for_testing();
  run_sanctioned_workloads();
  // Escapes record the *extraction's* call site (resolve takes a defaulted
  // source_location), so route 1 shows up under this file, while the
  // span-acquire sites land on the sanctioned accessors in src/.
  bool saw_resolve = false;       // resolve() caller: this test
  bool saw_cached_array = false;  // src/core/cached_array.hpp (acquire)
  bool saw_engine = false;        // src/dnn/engine.cpp (acquire)
  for (const auto& site : ptrprov::observed_sites()) {
    if (site.kind == "escape" &&
        site.site.find("ptrprov_route_test.cpp") != std::string::npos) {
      saw_resolve = true;
    }
    if (site.kind == "acquire" &&
        site.site.find("src/core/cached_array.hpp") != std::string::npos) {
      saw_cached_array = true;
    }
    if (site.kind == "acquire" &&
        site.site.find("src/dnn/engine.cpp") != std::string::npos) {
      saw_engine = true;
    }
  }
  EXPECT_TRUE(saw_resolve);
  EXPECT_TRUE(saw_cached_array);
  EXPECT_TRUE(saw_engine);
}

TEST(PtrprovRoutes, DumpObservedSitesWhenRequested) {
  // tools/check.sh sets CA_PTRPROV_DUMP and feeds the file to
  // tools/ptrprov_check.py --runtime for the manifest <-> runtime diff.
  const char* path = std::getenv("CA_PTRPROV_DUMP");
  if (path == nullptr || path[0] == '\0') {
    GTEST_SKIP() << "CA_PTRPROV_DUMP not set";
  }
  ptrprov::reset_for_testing();
  run_sanctioned_workloads();
  const std::string dump = ptrprov::dump_registry_json();
  std::FILE* f = std::fopen(path, "w");
  ASSERT_NE(f, nullptr) << "cannot open " << path;
  std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);
}

}  // namespace
}  // namespace ca

#endif  // CA_PTRPROV_ENABLED
