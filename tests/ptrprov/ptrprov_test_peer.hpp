// DataManagerTestPeer (ptrprov flavor): reintroduces, behind a test-only
// friend, the pin-discipline bugs the PinnedSpan accessor exists to
// prevent, plus the raw corruption injectors the dm.pin/prov.* audit
// red/green tests need.  Every injector has a restore counterpart so a
// test can put the manager back into a consistent state before teardown.
#pragma once

#include <source_location>

#include "dm/data_manager.hpp"
#include "dm/object.hpp"
#include "ptrprov/ptrprov.hpp"

namespace ca::dm {

struct DataManagerTestPeer {
  /// The §III-C bug itself: drop the object's pins while raw pointers (or
  /// live spans) still reference its primary.  From here evictfrom and
  /// defragment are free to relocate the bytes underneath them.
  static void force_unpin(Object& object) { object.pin_count_.store(0); }

  /// Restore a sane pin count (so span destructors and audits after the
  /// staged hazard do not underflow).
  static void set_pin(Object& object, int count) {
    object.pin_count_.store(count);
  }

  /// The unpinned raw escape: what a kernel that skipped the
  /// begin_kernel/end_kernel bracket would do.  Replicates
  /// Runtime::resolve minus the pin check; ca::ptrprov must flag the
  /// extraction itself (kUnpinnedExtract), not trust the caller.
  static const std::byte* unpinned_extract(
      DataManager& dm, Object& object,
      std::source_location loc = std::source_location::current()) {
    Region* primary = object.primary();
    if (primary == nullptr) return nullptr;
    dm.wait_ready(*primary);
    ptrprov::on_escape(primary, primary->generation(), object.pin_count(),
                       object.name().c_str(), loc);
    return primary->data();
  }

  /// Corruption injector for the dm.pin "orphaned primary" invariant:
  /// point the pinned object's primary at a region the manager no longer
  /// owns (the caller keeps the old value to restore).
  static Region* swap_primary(Object& object, Region* bogus) {
    Region* prev = object.primary_;
    object.primary_ = bogus;
    return prev;
  }

  /// Corruption injector for the primary's parent back-pointer.
  static Object* swap_region_parent(Region& region, Object* bogus) {
    Object* prev = region.parent_;
    region.parent_ = bogus;
    return prev;
  }

  /// Corruption injector for the "no pinned object on a defragmenting
  /// device" invariant: pretend `dev` is mid-compaction (or -1 to clear).
  static void set_defragmenting(DataManager& dm, int dev) {
    dm.defragmenting_.store(dev, std::memory_order_relaxed);
  }
};

}  // namespace ca::dm
