// Fast-tier vs reference-tier kernel parity (the contract in DESIGN.md
// §"Compute kernels"): the blocked-GEMM/im2col/pool-parallel kernels must
// agree with the scalar seed kernels within 1e-4 relative tolerance on
// every shape class that stresses a blocking or padding edge -- stride > 1,
// padded borders, 1x1 convolutions, non-square inputs, channel counts not
// divisible by the register tile, and batch = 1.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "dnn/gemm.hpp"
#include "dnn/harness.hpp"
#include "dnn/models.hpp"
#include "dnn/ops_real.hpp"
#include "dnn/scratch.hpp"
#include "dnn/trainer.hpp"
#include "simd/copy.hpp"
#include "simd/gemm_kernel.hpp"
#include "simd/isa.hpp"
#include "telemetry/counters.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace ca::dnn::real {
namespace {

constexpr float kRelTol = 1e-4f;

std::vector<float> randn(std::size_t n, std::uint64_t seed) {
  ca::util::Xoshiro256 rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

void expect_close(const std::vector<float>& got,
                  const std::vector<float>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    const float tol = kRelTol * std::max(1.0f, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol) << what << " at index " << i;
  }
}

// Shapes chosen to hit every fast-path edge: see file comment.
const ConvDims kConvShapes[] = {
    // n  cin  h   w  cout k  stride pad
    {1, 3, 8, 8, 5, 3, 1, 1},    // batch=1, odd channel counts
    {2, 4, 9, 7, 6, 3, 2, 1},    // stride 2, non-square, odd spatial dims
    {3, 7, 10, 6, 5, 1, 1, 0},   // 1x1 (identity-col fast path)
    {2, 5, 6, 6, 9, 5, 1, 2},    // 5x5 kernel, wide padding
    {1, 2, 11, 5, 3, 3, 2, 0},   // stride 2, no padding, batch=1
    {4, 6, 8, 8, 17, 3, 1, 1},   // cout=17: fringe of the 6x16 GEMM tile
    {5, 3, 4, 4, 4, 3, 1, 1},    // batch > pool images-per-thread
};

class KernelParityTest : public ::testing::Test {
 protected:
  KernelCtx fast() { return {&pool_, &scratch_, &counters_, false}; }
  KernelCtx reference() { return {&pool_, &scratch_, &counters_, true}; }

  util::ThreadPool pool_{8};
  ScratchPool scratch_;
  telemetry::KernelCounters counters_;
};

TEST_F(KernelParityTest, GemmMatchesNaiveAcrossTransposesAndFringes) {
  struct Case {
    std::size_t m, n, k;
    float alpha, beta;
  };
  const Case cases[] = {
      {1, 1, 1, 1.0f, 0.0f},      {5, 17, 3, 1.0f, 0.0f},
      {6, 16, 256, 1.0f, 0.0f},   {37, 53, 29, 2.0f, 0.5f},
      {64, 128, 96, 1.0f, 1.0f},  {96, 1040, 13, 1.0f, 0.0f},
      {13, 7, 300, -1.0f, 2.0f},
  };
  for (const auto& c : cases) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        const auto a = randn(c.m * c.k, 1);
        const auto b = randn(c.k * c.n, 2);
        const auto c0 = randn(c.m * c.n, 3);
        const std::size_t lda = ta ? c.m : c.k;
        const std::size_t ldb = tb ? c.k : c.n;

        // Naive oracle.
        std::vector<float> want(c0);
        for (std::size_t i = 0; i < c.m; ++i) {
          for (std::size_t j = 0; j < c.n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < c.k; ++p) {
              const float av = ta ? a[p * lda + i] : a[i * lda + p];
              const float bv = tb ? b[j * ldb + p] : b[p * ldb + j];
              acc += static_cast<double>(av) * bv;
            }
            want[i * c.n + j] = c.alpha * static_cast<float>(acc) +
                                c.beta * c0[i * c.n + j];
          }
        }

        std::vector<float> got(c0);
        gemm(fast(), ta, tb, c.m, c.n, c.k, c.alpha, a.data(), lda, b.data(),
             ldb, c.beta, got.data(), c.n);
        expect_close(got, want, "gemm");
      }
    }
  }
}

// Serial-path fringes with n % kNR != 0 and k >= kKC, run against exact-
// sized leases: a null ctx owns a fresh local ScratchPool, so every acquire
// is exact and ASan sees any pack_b write past the padded panel width.  (The
// fixture's shared pool recycles oversized buffers LIFO, which can hide an
// overflow in the slack of an earlier, larger lease.)
TEST_F(KernelParityTest, GemmSerialFringeExactLeases) {
  struct Case {
    std::size_t m, n, k;
  };
  // n = 7: 8 * ceil(7/8) * kc > kc * 7, the width pack_b actually writes.
  // k = 300 > kKC exercises the multi-pc loop; k = 256 the exact boundary.
  for (const auto& c : {Case{13, 7, 300}, Case{4, 3, 256}, Case{97, 15, 257}}) {
    // Fringe at whatever tile the dispatcher picked (8/16/32 wide).
    ASSERT_NE(c.n % simd::gemm_tile(simd::active_level()).nr, 0u);
    ASSERT_GE(c.k, kGemmKC);
    const auto a = randn(c.m * c.k, 6);
    const auto b = randn(c.k * c.n, 7);
    std::vector<float> want(c.m * c.n, 0.0f), got(c.m * c.n, 0.0f);
    gemm(fast(), false, false, c.m, c.n, c.k, 1.0f, a.data(), c.k, b.data(),
         c.n, 0.0f, want.data(), c.n);
    gemm(KernelCtx{}, false, false, c.m, c.n, c.k, 1.0f, a.data(), c.k,
         b.data(), c.n, 0.0f, got.data(), c.n);
    expect_close(got, want, "gemm serial fringe");
  }
}

TEST_F(KernelParityTest, GemmSerialFallbackWithoutPoolOrScratch) {
  const std::size_t m = 23, n = 41, k = 57;
  const auto a = randn(m * k, 4);
  const auto b = randn(k * n, 5);
  std::vector<float> want(m * n), got(m * n);
  gemm(fast(), false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       want.data(), n);
  gemm(KernelCtx{}, false, false, m, n, k, 1.0f, a.data(), k, b.data(), n,
       0.0f, got.data(), n);
  expect_close(got, want, "gemm null-ctx");
}

TEST_F(KernelParityTest, Conv2dForward) {
  for (const auto& d : kConvShapes) {
    const auto x = randn(d.n * d.cin * d.h * d.w, 10);
    const auto w = randn(d.cout * d.cin * d.k * d.k, 11);
    const auto b = randn(d.cout, 12);
    const std::size_t ysz = d.n * d.cout * d.hout() * d.wout();
    std::vector<float> want(ysz), got(ysz);
    conv2d_fwd(x.data(), w.data(), b.data(), want.data(), d);
    conv2d_fwd(fast(), x.data(), w.data(), b.data(), got.data(), d);
    expect_close(got, want, "conv2d_fwd");
  }
  EXPECT_GT(counters_.gemm_calls, 0u);
}

TEST_F(KernelParityTest, Conv2dForwardNullBias) {
  const ConvDims d = kConvShapes[1];
  const auto x = randn(d.n * d.cin * d.h * d.w, 13);
  const auto w = randn(d.cout * d.cin * d.k * d.k, 14);
  const std::size_t ysz = d.n * d.cout * d.hout() * d.wout();
  std::vector<float> want(ysz), got(ysz);
  conv2d_fwd(x.data(), w.data(), nullptr, want.data(), d);
  conv2d_fwd(fast(), x.data(), w.data(), nullptr, got.data(), d);
  expect_close(got, want, "conv2d_fwd nobias");
}

TEST_F(KernelParityTest, Conv2dBackwardData) {
  for (const auto& d : kConvShapes) {
    const auto w = randn(d.cout * d.cin * d.k * d.k, 20);
    const auto gy = randn(d.n * d.cout * d.hout() * d.wout(), 21);
    const std::size_t xsz = d.n * d.cin * d.h * d.w;
    std::vector<float> want(xsz), got(xsz);
    conv2d_bwd_data(w.data(), gy.data(), want.data(), d);
    conv2d_bwd_data(fast(), w.data(), gy.data(), got.data(), d);
    expect_close(got, want, "conv2d_bwd_data");
  }
}

TEST_F(KernelParityTest, Conv2dBackwardWeights) {
  for (const auto& d : kConvShapes) {
    const auto x = randn(d.n * d.cin * d.h * d.w, 30);
    const auto gy = randn(d.n * d.cout * d.hout() * d.wout(), 31);
    const std::size_t wsz = d.cout * d.cin * d.k * d.k;
    std::vector<float> want(wsz), got(wsz);
    conv2d_bwd_weights(x.data(), gy.data(), want.data(), d);
    conv2d_bwd_weights(fast(), x.data(), gy.data(), got.data(), d);
    expect_close(got, want, "conv2d_bwd_weights");
  }
}

TEST_F(KernelParityTest, Conv2dBackwardBias) {
  for (const auto& d : kConvShapes) {
    const auto gy = randn(d.n * d.cout * d.hout() * d.wout(), 40);
    std::vector<float> want(d.cout), got(d.cout);
    conv2d_bwd_bias(gy.data(), want.data(), d);
    conv2d_bwd_bias(fast(), gy.data(), got.data(), d);
    expect_close(got, want, "conv2d_bwd_bias");
  }
}

TEST_F(KernelParityTest, DenseAllPasses) {
  struct Case {
    std::size_t n, in, out;
  };
  // batch=1, fringe sizes, and a shape large enough to go wide.
  for (const auto& c : {Case{1, 7, 5}, Case{9, 33, 17}, Case{64, 96, 200}}) {
    const auto x = randn(c.n * c.in, 50);
    const auto w = randn(c.out * c.in, 51);
    const auto b = randn(c.out, 52);
    const auto gy = randn(c.n * c.out, 53);

    std::vector<float> want(c.n * c.out), got(c.n * c.out);
    dense_fwd(x.data(), w.data(), b.data(), want.data(), c.n, c.in, c.out);
    dense_fwd(fast(), x.data(), w.data(), b.data(), got.data(), c.n, c.in,
              c.out);
    expect_close(got, want, "dense_fwd");

    std::vector<float> wantx(c.n * c.in), gotx(c.n * c.in);
    dense_bwd_data(w.data(), gy.data(), wantx.data(), c.n, c.in, c.out);
    dense_bwd_data(fast(), w.data(), gy.data(), gotx.data(), c.n, c.in,
                   c.out);
    expect_close(gotx, wantx, "dense_bwd_data");

    std::vector<float> wantw(c.out * c.in), gotw(c.out * c.in);
    dense_bwd_weights(x.data(), gy.data(), wantw.data(), c.n, c.in, c.out);
    dense_bwd_weights(fast(), x.data(), gy.data(), gotw.data(), c.n, c.in,
                      c.out);
    expect_close(gotw, wantw, "dense_bwd_weights");

    std::vector<float> wantb(c.out), gotb(c.out);
    dense_bwd_bias(gy.data(), wantb.data(), c.n, c.out);
    dense_bwd_bias(fast(), gy.data(), gotb.data(), c.n, c.out);
    expect_close(gotb, wantb, "dense_bwd_bias");
  }
}

TEST_F(KernelParityTest, ElementwisePoolAndNormFamily) {
  // Large enough that the grain heuristic actually goes wide (> 4096).
  const std::size_t n = 3, c = 5, h = 20, w = 18;
  const std::size_t total = n * c * h * w;
  const auto x = randn(total, 60);
  const auto gy = randn(total, 61);

  {
    std::vector<float> want(total), got(total);
    relu_fwd(x.data(), want.data(), total);
    relu_fwd(fast(), x.data(), got.data(), total);
    expect_close(got, want, "relu_fwd");
    relu_bwd(x.data(), gy.data(), want.data(), total);
    relu_bwd(fast(), x.data(), gy.data(), got.data(), total);
    expect_close(got, want, "relu_bwd");
  }
  {
    std::vector<float> want(total), got(total);
    add_fwd(x.data(), gy.data(), want.data(), total);
    add_fwd(fast(), x.data(), gy.data(), got.data(), total);
    expect_close(got, want, "add_fwd");
  }
  {
    const std::size_t osz = total / 4;
    std::vector<float> want(osz), got(osz);
    maxpool2_fwd(x.data(), want.data(), n, c, h, w);
    maxpool2_fwd(fast(), x.data(), got.data(), n, c, h, w);
    expect_close(got, want, "maxpool2_fwd");
    const auto gyo = randn(osz, 62);
    std::vector<float> wantx(total), gotx(total);
    maxpool2_bwd(x.data(), gyo.data(), wantx.data(), n, c, h, w);
    maxpool2_bwd(fast(), x.data(), gyo.data(), gotx.data(), n, c, h, w);
    expect_close(gotx, wantx, "maxpool2_bwd");
    avgpool2_fwd(x.data(), want.data(), n, c, h, w);
    avgpool2_fwd(fast(), x.data(), got.data(), n, c, h, w);
    expect_close(got, want, "avgpool2_fwd");
    avgpool2_bwd(gyo.data(), wantx.data(), n, c, h, w);
    avgpool2_bwd(fast(), gyo.data(), gotx.data(), n, c, h, w);
    expect_close(gotx, wantx, "avgpool2_bwd");
  }
  {
    std::vector<float> want(n * c), got(n * c);
    global_avgpool_fwd(x.data(), want.data(), n, c, h, w);
    global_avgpool_fwd(fast(), x.data(), got.data(), n, c, h, w);
    expect_close(got, want, "global_avgpool_fwd");
    const auto g2 = randn(n * c, 63);
    std::vector<float> wantx(total), gotx(total);
    global_avgpool_bwd(g2.data(), wantx.data(), n, c, h, w);
    global_avgpool_bwd(fast(), g2.data(), gotx.data(), n, c, h, w);
    expect_close(gotx, wantx, "global_avgpool_bwd");
  }
  {
    // Batchnorm is bit-identical by construction (shared per-channel body).
    const auto gamma = randn(c, 64);
    const auto beta = randn(c, 65);
    std::vector<float> want(total), got(total), wm(c), wi(c), gm(c), gi(c);
    batchnorm_fwd(x.data(), gamma.data(), beta.data(), want.data(), wm.data(),
                  wi.data(), n, c, h, w, 1e-5f);
    batchnorm_fwd(fast(), x.data(), gamma.data(), beta.data(), got.data(),
                  gm.data(), gi.data(), n, c, h, w, 1e-5f);
    EXPECT_EQ(want, got);
    EXPECT_EQ(wm, gm);
    EXPECT_EQ(wi, gi);
    std::vector<float> wantx(total), gotx(total), wgg(c), wgb(c), ggg(c),
        ggb(c);
    batchnorm_bwd(x.data(), gamma.data(), wm.data(), wi.data(), gy.data(),
                  wantx.data(), wgg.data(), wgb.data(), n, c, h, w);
    batchnorm_bwd(fast(), x.data(), gamma.data(), wm.data(), wi.data(),
                  gy.data(), gotx.data(), ggg.data(), ggb.data(), n, c, h, w);
    EXPECT_EQ(wantx, gotx);
    EXPECT_EQ(wgg, ggg);
    EXPECT_EQ(wgb, ggb);
  }
  {
    const std::size_t batch = 40, classes = 129;
    const auto logits = randn(batch * classes, 66);
    std::vector<float> labels(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      labels[i] = static_cast<float>(i % classes);
    }
    std::vector<float> wantp(batch * classes), gotp(batch * classes);
    const float wl = softmax_ce_fwd(logits.data(), labels.data(),
                                    wantp.data(), batch, classes);
    const float gl = softmax_ce_fwd(fast(), logits.data(), labels.data(),
                                    gotp.data(), batch, classes);
    EXPECT_EQ(wl, gl);
    EXPECT_EQ(wantp, gotp);
    std::vector<float> wantg(batch * classes), gotg(batch * classes);
    softmax_ce_bwd(wantp.data(), labels.data(), wantg.data(), batch,
                   classes);
    softmax_ce_bwd(fast(), gotp.data(), labels.data(), gotg.data(), batch,
                   classes);
    expect_close(gotg, wantg, "softmax_ce_bwd");
  }
  EXPECT_GT(counters_.eltwise_calls, 0u);
}

TEST_F(KernelParityTest, CopyFamilyAndOptimizer) {
  const std::size_t n = 3, ca = 5, cb = 7, h = 16, w = 16;
  const std::size_t hw = h * w;
  const auto a = randn(n * ca * hw, 70);
  const auto b = randn(n * cb * hw, 71);
  {
    std::vector<float> want(n * (ca + cb) * hw), got(want.size());
    concat_fwd(a.data(), b.data(), want.data(), n, ca, cb, h, w);
    concat_fwd(fast(), a.data(), b.data(), got.data(), n, ca, cb, h, w);
    EXPECT_EQ(want, got);
    std::vector<float> wa(n * ca * hw), wb(n * cb * hw), ga(wa.size()),
        gb(wb.size());
    concat_bwd(want.data(), wa.data(), wb.data(), n, ca, cb, h, w);
    concat_bwd(fast(), got.data(), ga.data(), gb.data(), n, ca, cb, h, w);
    EXPECT_EQ(wa, ga);
    EXPECT_EQ(wb, gb);
  }
  {
    const std::size_t rows = 50, dim = 32, batch = 600;
    const auto table = randn(rows * dim, 72);
    std::vector<float> idx(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      idx[i] = static_cast<float>((i * 7) % rows);
    }
    std::vector<float> want(batch * dim), got(batch * dim);
    embedding_gather(table.data(), idx.data(), want.data(), batch, dim);
    embedding_gather(fast(), table.data(), idx.data(), got.data(), batch,
                     dim);
    EXPECT_EQ(want, got);
  }
  {
    const std::size_t total = 20000;
    const auto g = randn(total, 73);
    auto want = randn(total, 74);
    auto got = want;
    sgd_update(want.data(), g.data(), 0.05f, total);
    sgd_update(fast(), got.data(), g.data(), 0.05f, total);
    EXPECT_EQ(want, got);
    accumulate(want.data(), g.data(), total);
    accumulate(fast(), got.data(), g.data(), total);
    EXPECT_EQ(want, got);
  }
  {
    const std::size_t total = 10000;
    const auto x = randn(total, 75);
    std::vector<float> wy(total), wm(total), gy2(total), gm(total);
    dropout_fwd(x.data(), wy.data(), wm.data(), 0.3f, 99, total);
    dropout_fwd(fast(), x.data(), gy2.data(), gm.data(), 0.3f, 99, total);
    EXPECT_EQ(wy, gy2);  // sequential mask stream: bitwise identical
    EXPECT_EQ(wm, gm);
    const auto g = randn(total, 76);
    std::vector<float> wgx(total), ggx(total);
    dropout_bwd(wm.data(), g.data(), wgx.data(), total);
    dropout_bwd(fast(), gm.data(), g.data(), ggx.data(), total);
    EXPECT_EQ(wgx, ggx);
  }
}

TEST_F(KernelParityTest, ReferenceCtxRoutesToScalarBitwise) {
  const ConvDims d = kConvShapes[3];
  const auto x = randn(d.n * d.cin * d.h * d.w, 80);
  const auto w = randn(d.cout * d.cin * d.k * d.k, 81);
  const auto b = randn(d.cout, 82);
  const std::size_t ysz = d.n * d.cout * d.hout() * d.wout();
  std::vector<float> want(ysz), got(ysz);
  conv2d_fwd(x.data(), w.data(), b.data(), want.data(), d);
  conv2d_fwd(reference(), x.data(), w.data(), b.data(), got.data(), d);
  EXPECT_EQ(want, got);
}

TEST_F(KernelParityTest, CountersAccumulateAcrossTiers) {
  const ConvDims d = kConvShapes[5];
  const auto x = randn(d.n * d.cin * d.h * d.w, 90);
  const auto w = randn(d.cout * d.cin * d.k * d.k, 91);
  std::vector<float> y(d.n * d.cout * d.hout() * d.wout());
  conv2d_fwd(fast(), x.data(), w.data(), nullptr, y.data(), d);
  EXPECT_EQ(counters_.gemm_calls, d.n);
  EXPECT_EQ(counters_.im2col_calls, d.n);
  EXPECT_GT(counters_.gemm_flops, 0.0);
  EXPECT_GE(counters_.gemm_seconds, 0.0);
  // GFLOP/s is well-defined once any time was recorded.
  EXPECT_GE(counters_.gemm_gflops(), 0.0);
}

// RAII sweep guard: force a dispatch level, restore the entry level on
// scope exit so test order never leaks a forced level.
class ScopedIsaLevel {
 public:
  explicit ScopedIsaLevel(simd::IsaLevel level)
      : saved_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedIsaLevel() { simd::set_level(saved_); }
  ScopedIsaLevel(const ScopedIsaLevel&) = delete;
  ScopedIsaLevel& operator=(const ScopedIsaLevel&) = delete;

 private:
  simd::IsaLevel saved_;
};

std::vector<simd::IsaLevel> available_levels() {
  std::vector<simd::IsaLevel> levels{simd::IsaLevel::kScalar};
  if (simd::max_supported_level() >= simd::IsaLevel::kAvx2) {
    levels.push_back(simd::IsaLevel::kAvx2);
  }
  if (simd::max_supported_level() >= simd::IsaLevel::kAvx512) {
    levels.push_back(simd::IsaLevel::kAvx512);
  }
  return levels;
}

// The whole suite already runs at whatever level CA_ISA / the host picked
// (tools/check.sh sweeps the full binary per level); this test additionally
// sweeps every level in-process so a single default run still proves
// scalar, AVX2 and AVX-512 all agree with the naive oracle on the
// trans/alpha/beta/fringe battery and a conv edge shape.
TEST_F(KernelParityTest, GemmAndConvParityAtEveryDispatchLevel) {
  struct Case {
    std::size_t m, n, k;
    float alpha, beta;
  };
  const Case cases[] = {
      {5, 17, 3, 1.0f, 0.0f},    // fringe in every tile dimension
      {37, 53, 29, 2.0f, 0.5f},  // alpha/beta blend
      {96, 1040, 13, 1.0f, 0.0f},  // goes wide; nc fringe at 1040 > kNC
  };
  for (const simd::IsaLevel level : available_levels()) {
    ScopedIsaLevel forced(level);
    ASSERT_EQ(simd::active_level(), level);
    for (const auto& c : cases) {
      for (const bool ta : {false, true}) {
        const auto a = randn(c.m * c.k, 101);
        const auto b = randn(c.k * c.n, 102);
        const auto c0 = randn(c.m * c.n, 103);
        const std::size_t lda = ta ? c.m : c.k;

        std::vector<float> want(c0);
        for (std::size_t i = 0; i < c.m; ++i) {
          for (std::size_t j = 0; j < c.n; ++j) {
            double acc = 0.0;
            for (std::size_t p = 0; p < c.k; ++p) {
              const float av = ta ? a[p * lda + i] : a[i * lda + p];
              acc += static_cast<double>(av) * b[p * c.n + j];
            }
            want[i * c.n + j] = c.alpha * static_cast<float>(acc) +
                                c.beta * c0[i * c.n + j];
          }
        }
        std::vector<float> got(c0);
        gemm(fast(), ta, false, c.m, c.n, c.k, c.alpha, a.data(), lda,
             b.data(), c.n, c.beta, got.data(), c.n);
        expect_close(got, want,
                     simd::level_name(level));
      }
    }
    // One conv edge shape per level (the full conv battery runs per level
    // via CA_ISA in tools/check.sh).
    const ConvDims d = kConvShapes[5];  // cout=17: tile fringe
    const auto x = randn(d.n * d.cin * d.h * d.w, 104);
    const auto w = randn(d.cout * d.cin * d.k * d.k, 105);
    const std::size_t ysz = d.n * d.cout * d.hout() * d.wout();
    std::vector<float> want(ysz), got(ysz);
    conv2d_fwd(x.data(), w.data(), nullptr, want.data(), d);
    conv2d_fwd(fast(), x.data(), w.data(), nullptr, got.data(), d);
    expect_close(got, want, simd::level_name(level));
  }
}

// CA_ISA=scalar must be bitwise the seed kernel: same 4x8 packed tile,
// same accumulation order, same write-back branches.  The oracle below is
// the seed's serial blocked path, verbatim, with the tile constants fixed
// at 4x8 -- EXPECT_EQ, not tolerance.
TEST_F(KernelParityTest, ScalarLevelBitwiseIdenticalToBaselineTile) {
  constexpr std::size_t MR = 4, NR = 8;
  const std::size_t m = 37, n = 29, k = 300;
  const auto a = randn(m * k, 110);
  const auto b = randn(k * n, 111);
  const auto c0 = randn(m * n, 112);

  // Seed serial path: pack + 4x8 micro-kernel at kMC/kKC/kNC blocking.
  std::vector<float> want(c0);
  {
    const std::size_t npad = (n + NR - 1) / NR * NR;
    std::vector<float> pa(kGemmMC * kGemmKC), pb(kGemmKC * npad);
    for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
      const std::size_t kc = std::min(kGemmKC, k - pc);
      const bool first_pc = pc == 0;
      for (std::size_t jc = 0; jc < n; jc += kGemmNC) {
        const std::size_t nc = std::min(kGemmNC, n - jc);
        for (std::size_t jp = 0; jp < nc; jp += NR) {
          float* panel = pb.data() + (jp / NR) * (NR * kc);
          const std::size_t cols = std::min(NR, nc - jp);
          for (std::size_t p = 0; p < kc; ++p) {
            float* dst = panel + p * NR;
            const float* src = b.data() + (pc + p) * n + jc + jp;
            for (std::size_t j = 0; j < cols; ++j) dst[j] = src[j];
            for (std::size_t j = cols; j < NR; ++j) dst[j] = 0.0f;
          }
        }
        for (std::size_t ic = 0; ic < m; ic += kGemmMC) {
          const std::size_t mc = std::min(kGemmMC, m - ic);
          for (std::size_t ip = 0; ip < mc; ip += MR) {
            float* panel = pa.data() + (ip / MR) * (MR * kc);
            const std::size_t rows = std::min(MR, mc - ip);
            for (std::size_t p = 0; p < kc; ++p) {
              float* dst = panel + p * MR;
              for (std::size_t r = 0; r < rows; ++r) {
                dst[r] = a[(ic + ip + r) * k + pc + p];
              }
              for (std::size_t r = rows; r < MR; ++r) dst[r] = 0.0f;
            }
          }
          for (std::size_t jr = 0; jr < nc; jr += NR) {
            const std::size_t nr = std::min(NR, nc - jr);
            const float* pbp = pb.data() + (jr / NR) * (NR * kc);
            for (std::size_t ir = 0; ir < mc; ir += MR) {
              const std::size_t mr = std::min(MR, mc - ir);
              const float* pap = pa.data() + (ir / MR) * (MR * kc);
              float acc[MR][NR] = {};
              for (std::size_t p = 0; p < kc; ++p) {
                const float* ap = pap + p * MR;
                const float* bp = pbp + p * NR;
                for (std::size_t i = 0; i < MR; ++i) {
                  const float av = ap[i];
                  for (std::size_t j = 0; j < NR; ++j) {
                    acc[i][j] += av * bp[j];
                  }
                }
              }
              float* ctile = want.data() + (ic + ir) * n + jc + jr;
              for (std::size_t i = 0; i < mr; ++i) {
                float* crow = ctile + i * n;
                if (!first_pc) {
                  for (std::size_t j = 0; j < nr; ++j) {
                    crow[j] += 1.5f * acc[i][j];
                  }
                } else {
                  for (std::size_t j = 0; j < nr; ++j) {
                    crow[j] = 1.5f * acc[i][j] + 0.5f * crow[j];
                  }
                }
              }
            }
          }
        }
      }
    }
  }

  ScopedIsaLevel forced(simd::IsaLevel::kScalar);
  std::vector<float> got(c0);
  gemm(KernelCtx{}, false, false, m, n, k, 1.5f, a.data(), k, b.data(), n,
       0.5f, got.data(), n);
  EXPECT_EQ(want, got);
}

// The NT writeback path must be byte-exact against the temporal path at
// every level: misaligned heads and tails, sub-threshold sizes (which stay
// temporal), and sizes straddling kNtThreshold.
TEST_F(KernelParityTest, CopyAndFillByteExactOnNtPath) {
  const std::size_t big = simd::kNtThreshold + 1000;
  std::vector<unsigned char> src(big + 128), dst(big + 128), ref(big + 128);
  ca::util::Xoshiro256 rng(7);
  for (auto& x : src) x = static_cast<unsigned char>(rng());

  const std::size_t sizes[] = {
      0, 1, 31, 32, 33, 63, 64, 65, 4096,
      simd::kNtThreshold - 1, simd::kNtThreshold, simd::kNtThreshold + 67};
  for (const simd::IsaLevel level : available_levels()) {
    ScopedIsaLevel forced(level);
    for (const std::size_t sz : sizes) {
      for (const std::size_t off : {std::size_t{0}, std::size_t{1},
                                    std::size_t{13}, std::size_t{63}}) {
        ASSERT_LE(off + sz, dst.size());
        std::fill(dst.begin(), dst.end(), 0xAB);
        std::fill(ref.begin(), ref.end(), 0xAB);
        const std::size_t nt =
            util::copy_bytes(dst.data() + off, src.data() + off, sz,
                             "kparity-copy", simd::CopyHint::kWriteback);
        std::memcpy(ref.data() + off, src.data() + off, sz);
        ASSERT_EQ(dst, ref) << "copy level=" << simd::level_name(level)
                            << " size=" << sz << " off=" << off;
        if (sz < simd::kNtThreshold || level == simd::IsaLevel::kScalar) {
          EXPECT_EQ(nt, 0u);  // temporal fallback
        }

        std::fill(dst.begin(), dst.end(), 0xAB);
        std::fill(ref.begin(), ref.end(), 0xAB);
        util::fill_zero(dst.data() + off, sz, "kparity-fill",
                        simd::CopyHint::kWriteback);
        std::memset(ref.data() + off, 0, sz);
        ASSERT_EQ(dst, ref) << "fill level=" << simd::level_name(level)
                            << " size=" << sz << " off=" << off;
      }
    }
  }
}

// End-to-end: one training iteration under Backend::kReal agrees with the
// same iteration under Backend::kReference (same seeds, same mode).
TEST(KernelParityIntegration, TrainerLossMatchesReferenceBackend) {
  float losses[2] = {0.0f, 0.0f};
  const Backend backends[2] = {Backend::kReal, Backend::kReference};
  for (int i = 0; i < 2; ++i) {
    HarnessConfig hc;
    hc.mode = Mode::kCaLM;
    hc.backend = backends[i];
    hc.kernel_threads = 4;
    Harness harness(hc);
    auto model = build_model(harness.engine(), ModelSpec::vgg_tiny());
    Trainer trainer(harness, *model);
    losses[i] = trainer.run_iteration().loss;
  }
  EXPECT_NEAR(losses[0], losses[1],
              kRelTol * std::max(1.0f, std::abs(losses[1])));
}

}  // namespace
}  // namespace ca::dnn::real
