#include "dnn/harness.hpp"

#include <gtest/gtest.h>

#include "util/align.hpp"

namespace ca::dnn {
namespace {

HarnessConfig cfg(Mode mode) {
  HarnessConfig c;
  c.mode = mode;
  c.dram_bytes = 4 * util::MiB;
  c.nvram_bytes = 16 * util::MiB;
  c.backend = Backend::kSim;
  return c;
}

TEST(Harness, ModeNames) {
  EXPECT_STREQ(to_string(Mode::kTwoLmNone), "2LM: 0");
  EXPECT_STREQ(to_string(Mode::kTwoLmM), "2LM: M");
  EXPECT_STREQ(to_string(Mode::kCaNone), "CA: 0");
  EXPECT_STREQ(to_string(Mode::kCaL), "CA: L");
  EXPECT_STREQ(to_string(Mode::kCaLM), "CA: LM");
  EXPECT_STREQ(to_string(Mode::kCaLMP), "CA: LMP");
  EXPECT_STREQ(to_string(Mode::kNvramOnly), "NVRAM only");
}

TEST(Harness, TwoLmModesHaveCacheModel) {
  Harness a(cfg(Mode::kTwoLmNone));
  Harness b(cfg(Mode::kTwoLmM));
  EXPECT_NE(a.cache(), nullptr);
  EXPECT_NE(b.cache(), nullptr);
  EXPECT_EQ(a.cache()->config().capacity, 4 * util::MiB);
}

TEST(Harness, CaModesHaveNoCacheModel) {
  for (Mode m : {Mode::kCaNone, Mode::kCaL, Mode::kCaLM, Mode::kCaLMP,
                 Mode::kNvramOnly}) {
    Harness h(cfg(m));
    EXPECT_EQ(h.cache(), nullptr) << to_string(m);
  }
}

TEST(Harness, TwoLmObjectsLiveInNvram) {
  Harness h(cfg(Mode::kTwoLmNone));
  auto& rt = h.runtime();
  dm::Object& obj = rt.new_object(1 * util::MiB);
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(obj), sim::kSlow));
  rt.release(obj);
  rt.gc_collect();
}

TEST(Harness, CaLObjectsStartInDram) {
  Harness h(cfg(Mode::kCaL));
  auto& rt = h.runtime();
  dm::Object& obj = rt.new_object(1 * util::MiB);
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(obj), sim::kFast));
  rt.release(obj);
  rt.gc_collect();
}

TEST(Harness, CaNoneObjectsStartInNvram) {
  Harness h(cfg(Mode::kCaNone));
  auto& rt = h.runtime();
  dm::Object& obj = rt.new_object(1 * util::MiB);
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(obj), sim::kSlow));
  rt.release(obj);
  rt.gc_collect();
}

TEST(Harness, NvramOnlyIgnoresDram) {
  HarnessConfig c = cfg(Mode::kNvramOnly);
  c.dram_bytes = 0;  // Fig. 7 left edge
  Harness h(c);
  auto& rt = h.runtime();
  dm::Object& obj = rt.new_object(1 * util::MiB);
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(obj), sim::kSlow));
  rt.will_write(obj);  // hint ignored by the pinned policy
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(obj), sim::kSlow));
  rt.release(obj);
  rt.gc_collect();
}

TEST(Harness, EagerRetireWiredPerMode) {
  for (Mode m : {Mode::kTwoLmM, Mode::kCaLM, Mode::kCaLMP}) {
    Harness h(cfg(m));
    EXPECT_TRUE(h.engine().config().issue_retire) << to_string(m);
  }
  for (Mode m : {Mode::kTwoLmNone, Mode::kCaNone, Mode::kCaL}) {
    Harness h(cfg(m));
    EXPECT_FALSE(h.engine().config().issue_retire) << to_string(m);
  }
}

}  // namespace
}  // namespace ca::dnn
