#include <cmath>
#include "dnn/models.hpp"

#include <gtest/gtest.h>

#include "dnn/trainer.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

HarnessConfig tiny_cfg(Mode mode = Mode::kCaLM) {
  HarnessConfig cfg;
  cfg.mode = mode;
  cfg.dram_bytes = 16 * util::MiB;
  cfg.nvram_bytes = 64 * util::MiB;
  cfg.backend = Backend::kReal;
  return cfg;
}

class TinyModels : public ::testing::TestWithParam<ModelSpec::Family> {
 protected:
  static ModelSpec tiny_spec(ModelSpec::Family family) {
    switch (family) {
      case ModelSpec::Family::kVgg:
        return ModelSpec::vgg_tiny();
      case ModelSpec::Family::kResNet:
        return ModelSpec::resnet_tiny();
      case ModelSpec::Family::kDenseNet:
        return ModelSpec::densenet_tiny();
    }
    return ModelSpec::vgg_tiny();
  }
};

TEST_P(TinyModels, ForwardProducesLogits) {
  Harness h(tiny_cfg());
  auto& e = h.engine();
  const auto spec = tiny_spec(GetParam());
  auto model = build_model(e, spec);
  model->init(e, 7);
  Tensor input = e.tensor(model->input_shape());
  e.fill_normal(input, 1.0f, 1);
  Tensor logits = model->forward(e, input);
  EXPECT_EQ(logits.shape()[0], spec.batch);
  EXPECT_EQ(logits.shape()[1], spec.classes);
  logits.array().with_read([](std::span<const float> s) {
    for (const float v : s) EXPECT_TRUE(std::isfinite(v));
  });
  e.end_iteration();
}

TEST_P(TinyModels, ParameterCountPositiveAndConsistent) {
  Harness h(tiny_cfg());
  auto& e = h.engine();
  auto model = build_model(e, tiny_spec(GetParam()));
  std::size_t registered = 0;
  for (const auto& p : e.parameters()) registered += p.numel();
  EXPECT_EQ(model->parameter_count(), registered);
  EXPECT_GT(registered, 0u);
}

TEST_P(TinyModels, TrainingReducesLoss) {
  Harness h(tiny_cfg());
  auto& e = h.engine();
  const auto spec = tiny_spec(GetParam());
  auto model = build_model(e, spec);
  model->init(e, 7);

  // Train on a FIXED batch (same seed every iteration) so the loss must
  // drop if the gradients are right.
  TrainerOptions opts;
  opts.lr = 0.05f;
  float first = 0.0f;
  float last = 0.0f;
  for (int it = 0; it < 8; ++it) {
    Tensor input = e.tensor(model->input_shape());
    e.fill_normal(input, 1.0f, 99);
    Tensor labels = e.tensor({spec.batch});
    e.fill_labels(labels, spec.classes, 77);
    Tensor logits = model->forward(e, input);
    const float loss = e.softmax_ce_loss(logits, labels);
    ASSERT_TRUE(std::isfinite(loss));
    if (it == 0) first = loss;
    last = loss;
    e.backward();
    e.sgd_step(opts.lr);
    e.end_iteration();
  }
  EXPECT_LT(last, first * 0.8f) << "loss did not decrease";
}

TEST_P(TinyModels, NoObjectLeaksAcrossIterations) {
  Harness h(tiny_cfg());
  auto& e = h.engine();
  const auto spec = tiny_spec(GetParam());
  auto model = build_model(e, spec);
  model->init(e, 7);
  Trainer trainer(h, *model);
  trainer.run_iteration();
  const std::size_t live_after_first = h.runtime().manager().live_objects();
  for (int i = 0; i < 3; ++i) trainer.run_iteration();
  // Steady state: only parameters survive iterations.
  EXPECT_EQ(h.runtime().manager().live_objects(), live_after_first);
  EXPECT_EQ(live_after_first, e.parameters().size());
}

INSTANTIATE_TEST_SUITE_P(
    Families, TinyModels,
    ::testing::Values(ModelSpec::Family::kVgg, ModelSpec::Family::kResNet,
                      ModelSpec::Family::kDenseNet),
    [](const ::testing::TestParamInfo<ModelSpec::Family>& info) {
      switch (info.param) {
        case ModelSpec::Family::kVgg:
          return "Vgg";
        case ModelSpec::Family::kResNet:
          return "ResNet";
        case ModelSpec::Family::kDenseNet:
          return "DenseNet";
      }
      return "Unknown";
    });

TEST(ModelPresets, TableThreePresetsAreWellFormed) {
  for (const auto& spec :
       {ModelSpec::vgg416_large(), ModelSpec::vgg116_small(),
        ModelSpec::resnet200_large(), ModelSpec::resnet200_small(),
        ModelSpec::densenet264_large(), ModelSpec::densenet264_small()}) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_GT(spec.batch, 0u);
    EXPECT_GE(spec.image, 16u);
    EXPECT_FALSE(spec.stages.empty());
  }
}

TEST(ModelPresets, Vgg416HasFourHundredSixteenConvs) {
  const auto spec = ModelSpec::vgg416_large();
  std::size_t convs = 0;
  for (const auto s : spec.stages) convs += s;
  EXPECT_EQ(convs, 416u);
  const auto small = ModelSpec::vgg116_small();
  convs = 0;
  for (const auto s : small.stages) convs += s;
  EXPECT_EQ(convs, 116u);
}

TEST(ModelPresets, SmallBatchesAreSmaller) {
  EXPECT_LT(ModelSpec::resnet200_small().batch,
            ModelSpec::resnet200_large().batch);
  EXPECT_LT(ModelSpec::densenet264_small().batch,
            ModelSpec::densenet264_large().batch);
}

}  // namespace
}  // namespace ca::dnn
