// Tests for average pooling and dropout: reference values, engine-level
// behaviour, and numeric gradient checks.
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/harness.hpp"
#include "dnn/ops_real.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

TEST(AvgPool, ForwardAverages) {
  const std::vector<float> x = {1, 2, 3, 4,  //
                                5, 6, 7, 8,  //
                                9, 10, 11, 12,  //
                                13, 14, 15, 16};
  std::vector<float> y(4);
  real::avgpool2_fwd(x.data(), y.data(), 1, 1, 4, 4);
  EXPECT_EQ(y, (std::vector<float>{3.5f, 5.5f, 11.5f, 13.5f}));
}

TEST(AvgPool, BackwardSpreadsEvenly) {
  const std::vector<float> gy = {4};
  std::vector<float> gx(4);
  real::avgpool2_bwd(gy.data(), gx.data(), 1, 1, 2, 2);
  EXPECT_EQ(gx, (std::vector<float>{1, 1, 1, 1}));
}

TEST(Dropout, MaskIsZeroOrScaled) {
  std::vector<float> x(1000, 1.0f);
  std::vector<float> y(1000), mask(1000);
  real::dropout_fwd(x.data(), y.data(), mask.data(), 0.25f, 42, 1000);
  int dropped = 0;
  for (std::size_t i = 0; i < 1000; ++i) {
    if (mask[i] == 0.0f) {
      ++dropped;
      EXPECT_FLOAT_EQ(y[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(mask[i], 1.0f / 0.75f);
      EXPECT_FLOAT_EQ(y[i], mask[i]);
    }
  }
  EXPECT_NEAR(dropped, 250, 60);  // ~p fraction dropped
}

TEST(Dropout, DeterministicFromSeed) {
  std::vector<float> x(100, 1.0f), y1(100), y2(100), m1(100), m2(100);
  real::dropout_fwd(x.data(), y1.data(), m1.data(), 0.5f, 7, 100);
  real::dropout_fwd(x.data(), y2.data(), m2.data(), 0.5f, 7, 100);
  EXPECT_EQ(m1, m2);
  real::dropout_fwd(x.data(), y2.data(), m2.data(), 0.5f, 8, 100);
  EXPECT_NE(m1, m2);
}

TEST(Dropout, BackwardAppliesSameMask) {
  const std::vector<float> mask = {0.0f, 2.0f, 0.0f, 2.0f};
  const std::vector<float> gy = {10, 10, 10, 10};
  std::vector<float> gx(4);
  real::dropout_bwd(mask.data(), gy.data(), gx.data(), 4);
  EXPECT_EQ(gx, (std::vector<float>{0, 20, 0, 20}));
}

class PoolDropoutEngine : public ::testing::Test {
 protected:
  PoolDropoutEngine() : harness_(config()) {}

  static HarnessConfig config() {
    HarnessConfig cfg;
    cfg.mode = Mode::kCaL;
    cfg.dram_bytes = 16 * util::MiB;
    cfg.nvram_bytes = 64 * util::MiB;
    cfg.backend = Backend::kReal;
    return cfg;
  }

  /// Central-difference gradient check (see gradient_check_test.cpp).
  void check(Tensor& target, const std::function<float()>& loss_fn,
             double tol = 0.05) {
    auto& e = harness_.engine();
    loss_fn();
    e.backward();
    Tensor g = e.grad(target);
    ASSERT_TRUE(g.valid());
    std::vector<float> analytic(g.numel());
    g.array().with_read([&](std::span<const float> s) {
      std::copy(s.begin(), s.end(), analytic.begin());
    });
    e.end_iteration();
    const std::size_t n = target.numel();
    const std::size_t stride = std::max<std::size_t>(1, n / 5);
    for (std::size_t i = 0; i < n; i += stride) {
      const float eps = 1e-2f;
      float original = 0.0f;
      target.array().with_write([&](std::span<float> s) {
        original = s[i];
        s[i] = original + eps;
      });
      const float up = loss_fn();
      e.end_iteration();
      target.array().with_write([&](std::span<float> s) {
        s[i] = original - eps;
      });
      const float down = loss_fn();
      e.end_iteration();
      target.array().with_write([&](std::span<float> s) { s[i] = original; });
      const double numeric = (up - down) / (2.0 * eps);
      const double scale =
          std::max({std::abs(numeric), std::abs(double{analytic[i]}), 0.05});
      EXPECT_NEAR(analytic[i], numeric, tol * scale) << "element " << i;
    }
  }

  Harness harness_;
};

TEST_F(PoolDropoutEngine, AvgPoolGradCheck) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({1, 2, 4, 4}, "x");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({1}, "labels");
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(hw, 0.5f, 2);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 3);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.avgpool2(x));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(x, loss);
}

TEST_F(PoolDropoutEngine, DropoutGradCheck) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 2, 2, 2}, "x");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 11);
  e.fill_normal(hw, 0.5f, 12);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 13);
  // Fixed dropout seed: the mask is identical across loss evaluations, so
  // the function stays differentiable for the numeric check.
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.dropout(x, 0.3f, /*seed=*/99));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(x, loss);
}

TEST_F(PoolDropoutEngine, DropoutRejectsBadProbability) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({1, 1, 2, 2});
  EXPECT_THROW(e.dropout(x, 1.0f, 1), InternalError);
  EXPECT_THROW(e.dropout(x, -0.1f, 1), InternalError);
}

TEST_F(PoolDropoutEngine, AvgPoolRejectsOddDims) {
  auto& e = harness_.engine();
  Tensor odd = e.tensor({1, 1, 3, 3});
  EXPECT_THROW(e.avgpool2(odd), InternalError);
}

}  // namespace
}  // namespace ca::dnn
