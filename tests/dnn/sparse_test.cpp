// Tests for the sparse embedding extension (§VI): gather/scatter kernels,
// partial-access cost accounting, sparse-aware policy behaviour, and
// end-to-end DLRM-style training.
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "dnn/ops_real.hpp"
#include "dnn/trainer.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

TEST(SparseOps, GatherCopiesRows) {
  // table: 4 rows x 3 dims.
  const std::vector<float> table = {0, 1, 2,  10, 11, 12,
                                    20, 21, 22, 30, 31, 32};
  const std::vector<float> indices = {2, 0, 2};
  std::vector<float> out(9);
  real::embedding_gather(table.data(), indices.data(), out.data(), 3, 3);
  EXPECT_EQ(out, (std::vector<float>{20, 21, 22, 0, 1, 2, 20, 21, 22}));
}

TEST(SparseOps, ScatterSgdUpdatesOnlyTouchedRows) {
  std::vector<float> table = {1, 1, 2, 2, 3, 3};
  const std::vector<float> indices = {2};
  const std::vector<float> grads = {10, 20};
  real::embedding_scatter_sgd(table.data(), indices.data(), grads.data(),
                              0.1f, 1, 2);
  EXPECT_FLOAT_EQ(table[0], 1.0f);  // untouched
  EXPECT_FLOAT_EQ(table[4], 2.0f);  // row 2 updated
  EXPECT_FLOAT_EQ(table[5], 1.0f);
}

TEST(SparseOps, RepeatedIndexAccumulates) {
  std::vector<float> table = {0, 0};
  const std::vector<float> indices = {0, 0};
  const std::vector<float> grads = {1, 1, 1, 1};
  real::embedding_scatter_sgd(table.data(), indices.data(), grads.data(),
                              1.0f, 2, 2);
  EXPECT_FLOAT_EQ(table[0], -2.0f);
}

class EmbeddingFixture : public ::testing::Test {
 protected:
  static HarnessConfig cfg(Backend backend, bool sparse_aware = true) {
    HarnessConfig c;
    c.mode = Mode::kCaLMP;  // prefetching on: the dangerous case
    c.dram_bytes = 2 * util::MiB;
    c.nvram_bytes = 64 * util::MiB;
    c.backend = backend;
    (void)sparse_aware;
    return c;
  }
};

TEST_F(EmbeddingFixture, LookupGathersThroughTheRuntime) {
  Harness h(cfg(Backend::kReal));
  auto& e = h.engine();
  const std::size_t rows = 64, dim = 8;
  Tensor table = e.parameter({rows, dim}, "table");
  table.array().with_write([&](std::span<float> s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = static_cast<float>(i / dim);  // row r holds value r
    }
  });
  Tensor idx = e.tensor({4}, "idx");
  idx.array().with_write([](std::span<float> s) {
    s[0] = 3; s[1] = 0; s[2] = 63; s[3] = 3;
  });
  Tensor out = e.embedding_lookup(table, idx, 0.0f);
  out.array().with_read([&](std::span<const float> s) {
    EXPECT_FLOAT_EQ(s[0 * dim], 3.0f);
    EXPECT_FLOAT_EQ(s[1 * dim], 0.0f);
    EXPECT_FLOAT_EQ(s[2 * dim], 63.0f);
    EXPECT_FLOAT_EQ(s[3 * dim], 3.0f);
  });
  e.end_iteration();
}

TEST_F(EmbeddingFixture, PartialReadChargesOnlyTouchedBytes) {
  Harness h(cfg(Backend::kSim));
  auto& e = h.engine();
  // A 16 MiB table in NVRAM; one 4-row lookup must charge ~rows, not MiB.
  Tensor table = e.parameter({512 * 1024 / 16, 16}, "table");  // 2 MiB
  auto& lru = static_cast<policy::LruPolicy&>(h.runtime().policy());
  lru.evict(*table.object());
  const auto before = h.runtime().counters().device(sim::kSlow).bytes_read;
  Tensor idx = e.tensor({4}, "idx");
  e.embedding_lookup(table, idx, 0.0f);
  const auto delta =
      h.runtime().counters().device(sim::kSlow).bytes_read - before;
  EXPECT_EQ(delta, 4u * 16u * sizeof(float));
  e.end_iteration();
}

TEST_F(EmbeddingFixture, SparseAwarePolicyLeavesTableInNvram) {
  Harness h(cfg(Backend::kSim));
  auto& e = h.engine();
  Tensor table = e.parameter({64 * 1024, 16}, "table");  // 4 MiB > DRAM/2
  auto& lru = static_cast<policy::LruPolicy&>(h.runtime().policy());
  lru.evict(*table.object());
  ASSERT_TRUE(h.runtime().manager().in(
      *h.runtime().manager().getprimary(*table.object()), sim::kSlow));
  Tensor idx = e.tensor({8}, "idx");
  e.embedding_lookup(table, idx, 0.0f);
  // Despite prefetch mode (P), the sparse hint kept the table in place.
  EXPECT_TRUE(h.runtime().manager().in(
      *h.runtime().manager().getprimary(*table.object()), sim::kSlow));
  EXPECT_GE(lru.op_stats().sparse_reads_in_place, 1u);
  e.end_iteration();
}

TEST_F(EmbeddingFixture, BackwardAppliesFusedSparseUpdate) {
  Harness h(cfg(Backend::kReal));
  auto& e = h.engine();
  const std::size_t rows = 32, dim = 4, batch = 2, classes = 3;
  Tensor table = e.parameter({rows, dim}, "table");
  e.fill_const(table, 1.0f);
  Tensor idx = e.tensor({batch}, "idx");
  idx.array().with_write([](std::span<float> s) { s[0] = 5; s[1] = 9; });
  Tensor hw = e.parameter({classes, dim}, "hw");
  Tensor hb = e.parameter({classes}, "hb");
  e.fill_normal(hw, 0.5f, 1);
  e.fill_zero(hb);
  Tensor labels = e.tensor({batch}, "labels");
  e.fill_labels(labels, classes, 2);

  Tensor gathered = e.embedding_lookup(table, idx, /*lr=*/0.5f);
  e.softmax_ce_loss(e.dense(gathered, hw, hb), labels);
  e.backward();
  e.sgd_step(0.1f);
  e.end_iteration();

  // Rows 5 and 9 changed; every other row is untouched.
  table.array().with_read([&](std::span<const float> s) {
    bool row5_changed = false, row9_changed = false;
    for (std::size_t r = 0; r < rows; ++r) {
      bool changed = false;
      for (std::size_t j = 0; j < dim; ++j) {
        if (s[r * dim + j] != 1.0f) changed = true;
      }
      if (r == 5) row5_changed = changed;
      else if (r == 9) row9_changed = changed;
      else EXPECT_FALSE(changed) << "row " << r << " modified";
    }
    EXPECT_TRUE(row5_changed);
    EXPECT_TRUE(row9_changed);
  });
}

TEST_F(EmbeddingFixture, DlrmStyleTrainingReducesLoss) {
  // Embedding + MLP over a fixed batch: the loss must fall through the
  // fused sparse updates and the dense SGD combined.
  Harness h(cfg(Backend::kReal));
  auto& e = h.engine();
  const std::size_t rows = 128, dim = 8, batch = 8, classes = 4;
  Tensor table = e.parameter({rows, dim}, "table");
  e.fill_normal(table, 0.5f, 3);
  Tensor hw = e.parameter({classes, dim}, "hw");
  Tensor hb = e.parameter({classes}, "hb");
  e.fill_normal(hw, 0.5f, 4);
  e.fill_zero(hb);

  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 10; ++it) {
    Tensor idx = e.tensor({batch}, "idx");
    idx.array().with_write([&](std::span<float> s) {
      for (std::size_t i = 0; i < batch; ++i) {
        s[i] = static_cast<float>((i * 13) % rows);  // fixed hot rows
      }
    });
    Tensor labels = e.tensor({batch}, "labels");
    e.fill_labels(labels, classes, 5);
    Tensor gathered = e.embedding_lookup(table, idx, 0.1f);
    const float loss = e.softmax_ce_loss(e.dense(gathered, hw, hb), labels);
    ASSERT_TRUE(std::isfinite(loss));
    if (it == 0) first = loss;
    last = loss;
    e.backward();
    e.sgd_step(0.05f);
    e.end_iteration();
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST_F(EmbeddingFixture, NaivePolicyMigratesWholeTable) {
  // With sparse awareness disabled, a prefetching policy hauls the whole
  // table into DRAM for a lookup touching a fraction of it -- the failure
  // mode the SVI extension removes.
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(4 * util::MiB, 64 * util::MiB);
  core::Runtime rt(std::move(platform), [](dm::DataManager& dm) {
    policy::LruPolicyConfig cfg;
    cfg.prefetch = true;
    cfg.sparse_aware = false;  // naive
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  });
  dm::Object& table = rt.new_object(2 * util::MiB, "table");
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  lru.evict(table);
  const auto before = rt.counters().device(sim::kSlow).bytes_read;
  rt.will_read_partial(table, 4 * util::KiB);
  // The naive policy prefetched all 2 MiB.
  EXPECT_GE(rt.counters().device(sim::kSlow).bytes_read - before,
            2 * util::MiB);
  rt.release(table);
  rt.gc_collect();
}

}  // namespace
}  // namespace ca::dnn
