#include <cmath>
#include "dnn/engine.hpp"

#include <gtest/gtest.h>

#include "dnn/harness.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

HarnessConfig real_cfg(Mode mode = Mode::kCaLM) {
  HarnessConfig cfg;
  cfg.mode = mode;
  cfg.dram_bytes = 8 * util::MiB;
  cfg.nvram_bytes = 32 * util::MiB;
  cfg.backend = Backend::kReal;
  return cfg;
}

TEST(Engine, TensorCreation) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor t = e.tensor({2, 3, 4, 4}, "t");
  EXPECT_EQ(t.numel(), 96u);
  EXPECT_EQ(t.bytes(), 384u);
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.is_parameter());
  Tensor p = e.parameter({5}, "p");
  EXPECT_TRUE(p.is_parameter());
  EXPECT_EQ(e.parameters().size(), 1u);
}

TEST(Engine, FillsProduceExpectedValues) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor t = e.tensor({100});
  e.fill_const(t, 2.5f);
  t.array().with_read([](std::span<const float> s) {
    for (const float v : s) EXPECT_FLOAT_EQ(v, 2.5f);
  });
  e.fill_zero(t);
  t.array().with_read([](std::span<const float> s) {
    for (const float v : s) EXPECT_FLOAT_EQ(v, 0.0f);
  });
  Tensor labels = e.tensor({50});
  e.fill_labels(labels, 7, 42);
  labels.array().with_read([](std::span<const float> s) {
    for (const float v : s) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LT(v, 7.0f);
      EXPECT_FLOAT_EQ(v, std::floor(v));
    }
  });
}

TEST(Engine, ForwardOpsRecordOnTape) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 4, 4});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(w, 0.1f, 2);
  e.fill_zero(b);
  Tensor y = e.conv2d(x, w, b, 1, 1);
  EXPECT_EQ(e.tape_size(), 1u);
  Tensor z = e.relu(y);
  EXPECT_EQ(e.tape_size(), 2u);
  EXPECT_EQ(z.shape(), y.shape());
}

TEST(Engine, KernelsChargeSimulatedTime) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({8, 3, 16, 16});
  Tensor w = e.parameter({8, 3, 3, 3});
  Tensor b = e.parameter({8});
  const double t0 = h.runtime().clock().now();
  e.conv2d(x, w, b, 1, 1);
  EXPECT_GT(h.runtime().clock().now(), t0);
  EXPECT_EQ(e.stats().kernels, 1u);
  EXPECT_GT(e.stats().kernel_seconds, 0.0);
  EXPECT_GE(e.stats().kernel_seconds,
            std::max(e.stats().compute_seconds * 0.0,
                     e.stats().memory_seconds * 0.0));
}

TEST(Engine, RooflineTakesMaxOfComputeAndMemory) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({4, 3, 8, 8});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  e.conv2d(x, w, b, 1, 1);
  const auto& s = e.stats();
  EXPECT_DOUBLE_EQ(s.kernel_seconds,
                   std::max(s.compute_seconds, s.memory_seconds));
}

TEST(Engine, ArchiveAnnotationsIssuedAfterForwardKernels) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 4, 4});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  e.conv2d(x, w, b, 1, 1);
  EXPECT_EQ(e.stats().archives_issued, 3u);  // x, w, b
}

TEST(Engine, BackwardProducesParameterGradients) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 4, 4});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(w, 0.3f, 2);
  e.fill_zero(b);
  Tensor labels = e.tensor({2});
  e.fill_labels(labels, 4, 3);

  Tensor y = e.global_avgpool(e.relu(e.conv2d(x, w, b, 1, 1)));
  Tensor head_w = e.parameter({4, 4});
  Tensor head_b = e.parameter({4});
  e.fill_normal(head_w, 0.5f, 4);
  e.fill_zero(head_b);
  Tensor logits = e.dense(y, head_w, head_b);
  const float loss = e.softmax_ce_loss(logits, labels);
  EXPECT_GT(loss, 0.0f);

  e.backward();
  EXPECT_TRUE(e.grad(w).valid());
  EXPECT_TRUE(e.grad(b).valid());
  EXPECT_TRUE(e.grad(head_w).valid());
  EXPECT_TRUE(e.grad(head_b).valid());
}

TEST(Engine, BackwardWithoutLossThrows) {
  Harness h(real_cfg());
  EXPECT_THROW(h.engine().backward(), InternalError);
}

TEST(Engine, RetireFreesActivationsDuringBackward) {
  Harness h(real_cfg(Mode::kCaLM));  // M: eager retire
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 8, 8});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  Tensor labels = e.tensor({2});

  Tensor y = e.relu(e.conv2d(x, w, b, 1, 1));
  Tensor p = e.global_avgpool(y);
  Tensor head_w = e.parameter({4, 4});
  Tensor head_b = e.parameter({4});
  Tensor logits = e.dense(p, head_w, head_b);
  e.softmax_ce_loss(logits, labels);
  e.backward();

  EXPECT_GT(e.stats().retires_issued, 0u);
  // Activations retired at last use: their handles are now invalid.
  EXPECT_FALSE(y.valid());
  EXPECT_FALSE(logits.valid());
  // Parameters survive.
  EXPECT_TRUE(w.valid());
  EXPECT_TRUE(head_w.valid());
}

TEST(Engine, NoRetireWithoutM) {
  Harness h(real_cfg(Mode::kCaL));  // no M
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 8, 8});
  Tensor w = e.parameter({4, 3, 3, 3});
  Tensor b = e.parameter({4});
  Tensor labels = e.tensor({2});
  Tensor y = e.relu(e.conv2d(x, w, b, 1, 1));
  Tensor p = e.global_avgpool(y);
  Tensor head_w = e.parameter({4, 4});
  Tensor head_b = e.parameter({4});
  Tensor logits = e.dense(p, head_w, head_b);
  e.softmax_ce_loss(logits, labels);
  e.backward();
  EXPECT_EQ(e.stats().retires_issued, 0u);
  EXPECT_TRUE(y.valid());  // lingers until the GC
}

TEST(Engine, SgdStepUpdatesParameters) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 4});
  Tensor w = e.parameter({3, 4});
  Tensor b = e.parameter({3});
  Tensor labels = e.tensor({2});
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(w, 0.5f, 2);
  e.fill_zero(b);
  e.fill_labels(labels, 3, 3);

  std::vector<float> w_before(w.numel());
  w.array().with_read([&](std::span<const float> s) {
    std::copy(s.begin(), s.end(), w_before.begin());
  });

  e.softmax_ce_loss(e.dense(x, w, b), labels);
  e.backward();
  e.sgd_step(0.5f);

  bool changed = false;
  w.array().with_read([&](std::span<const float> s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != w_before[i]) changed = true;
    }
  });
  EXPECT_TRUE(changed);
  EXPECT_FALSE(e.grad(w).valid());  // grad consumed by the update
}

TEST(Engine, EndIterationClearsStateAndCollects) {
  Harness h(real_cfg(Mode::kCaL));  // no M: garbage accumulates
  auto& e = h.engine();
  {
    Tensor x = e.tensor({2, 3, 4, 4});
    Tensor w = e.parameter({4, 3, 3, 3});
    Tensor b = e.parameter({4});
    Tensor labels = e.tensor({2});
    Tensor p = e.global_avgpool(e.relu(e.conv2d(x, w, b, 1, 1)));
    Tensor head_w = e.parameter({4, 4});
    Tensor head_b = e.parameter({4});
    e.softmax_ce_loss(e.dense(p, head_w, head_b), labels);
    e.backward();
    e.sgd_step(0.1f);
  }
  e.end_iteration();
  EXPECT_EQ(e.tape_size(), 0u);
  EXPECT_GE(h.runtime().gc_stats().collections, 1u);
  // Only the parameters (conv w/b + head w/b) remain live.
  EXPECT_EQ(h.runtime().manager().live_objects(), e.parameters().size());
  EXPECT_EQ(e.parameters().size(), 4u);
}

TEST(Engine, ResidualAddSharesGradientSafely) {
  // add's pass-through gradient is consumed by two producers; the engine's
  // grad reference counting must keep it alive for both.
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 2, 4, 4});
  e.fill_normal(x, 1.0f, 1);
  Tensor a = e.relu(x);
  Tensor b = e.maxpool2(x);  // different branch, different shape...
  // shapes must match for add: use two relu branches instead.
  Tensor c = e.relu(a);
  Tensor sum = e.add(a, c);
  Tensor p = e.global_avgpool(sum);
  Tensor head_w = e.parameter({3, 2});
  Tensor head_b = e.parameter({3});
  e.fill_normal(head_w, 0.5f, 2);
  e.fill_zero(head_b);
  Tensor labels = e.tensor({2});
  e.fill_labels(labels, 3, 3);
  e.softmax_ce_loss(e.dense(p, head_w, head_b), labels);
  e.backward();
  EXPECT_TRUE(e.grad(x).valid());
  e.end_iteration();
}

TEST(Engine, AddOfSameTensorRejected) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 2, 4, 4});
  EXPECT_THROW(e.add(x, x), InternalError);
}

TEST(Engine, ShapeValidation) {
  Harness h(real_cfg());
  auto& e = h.engine();
  Tensor x = e.tensor({2, 3, 4, 4});
  Tensor w_bad = e.parameter({4, 5, 3, 3});  // cin mismatch
  Tensor b = e.parameter({4});
  EXPECT_THROW(e.conv2d(x, w_bad, b, 1, 1), InternalError);
  Tensor odd = e.tensor({1, 1, 3, 3});
  EXPECT_THROW(e.maxpool2(odd), InternalError);
  Tensor m = e.tensor({2, 8});
  Tensor wm = e.parameter({3, 9});
  Tensor bm = e.parameter({3});
  EXPECT_THROW(e.dense(m, wm, bm), InternalError);
}

}  // namespace
}  // namespace ca::dnn
