#include <cmath>
#include "dnn/trainer.hpp"

#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

HarnessConfig sim_cfg() {
  HarnessConfig c;
  c.mode = Mode::kCaLM;
  c.dram_bytes = 4 * util::MiB;
  c.nvram_bytes = 32 * util::MiB;
  c.backend = Backend::kSim;
  return c;
}

TEST(Trainer, IterationProducesMetrics) {
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  Trainer trainer(h, *model);
  const auto m = trainer.run_iteration();
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.compute_seconds, 0.0);
  EXPECT_GT(m.peak_resident_bytes, 0u);
  EXPECT_GT(m.dram.total(), 0u);
  EXPECT_EQ(trainer.iterations_run(), 1u);
}

TEST(Trainer, MetricsAreDeltasNotTotals) {
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  Trainer trainer(h, *model);
  const auto a = trainer.run_iteration();
  const auto b = trainer.run_iteration();
  // Steady state: same work, so the deltas must be almost identical, not
  // cumulative.
  EXPECT_NEAR(b.seconds, a.seconds, a.seconds);  // same magnitude
  EXPECT_LT(b.seconds, 1.9 * a.seconds);
}

TEST(Trainer, SteadyStateIsStable) {
  // The paper checks that iteration behaviour is consistent; in our fully
  // deterministic sim backend, steady-state iterations are *identical*.
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  Trainer trainer(h, *model);
  trainer.run_iteration();  // warm-up
  const auto a = trainer.run_iteration();
  const auto b = trainer.run_iteration();
  // The clock accumulates, so the delta may differ in the last ulp.
  EXPECT_NEAR(a.seconds, b.seconds, 1e-12 * a.seconds + 1e-15);
  EXPECT_EQ(a.dram.bytes_read, b.dram.bytes_read);
  EXPECT_EQ(a.nvram.bytes_written, b.nvram.bytes_written);
}

TEST(Trainer, TimeCategoriesSumBelowTotal) {
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::resnet_tiny());
  Trainer trainer(h, *model);
  const auto m = trainer.run_iteration();
  EXPECT_LE(m.compute_seconds + m.movement_seconds + m.gc_seconds,
            m.seconds + 1e-9);
}

TEST(Trainer, OccupancySamplingHooksIn) {
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  telemetry::TimeSeries series("resident");
  TrainerOptions opts;
  opts.occupancy = &series;
  Trainer trainer(h, *model, opts);
  trainer.run_iteration();
  EXPECT_GE(series.samples().size(), h.engine().stats().kernels);
  EXPECT_GT(series.max_value(), 0.0);
  // Samples are time-monotone.
  for (std::size_t i = 1; i < series.samples().size(); ++i) {
    EXPECT_GE(series.samples()[i].t, series.samples()[i - 1].t);
  }
}

TEST(Trainer, TwoLmModeCollectsCacheDeltas) {
  HarnessConfig c = sim_cfg();
  c.mode = Mode::kTwoLmNone;
  Harness h(c);
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  Trainer trainer(h, *model);
  const auto a = trainer.run_iteration();
  const auto b = trainer.run_iteration();
  EXPECT_GT(a.cache.accesses, 0u);
  EXPECT_GT(b.cache.accesses, 0u);
  // Per-iteration deltas, not cumulative: the second iteration is not
  // twice the first.
  EXPECT_LT(b.cache.accesses, 2 * a.cache.accesses);
}

TEST(Trainer, BusUtilizationBounded) {
  Harness h(sim_cfg());
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  Trainer trainer(h, *model);
  const auto m = trainer.run_iteration();
  EXPECT_GE(m.dram_bus_utilization, 0.0);
  EXPECT_LE(m.dram_bus_utilization, 1.0);
}

TEST(Trainer, RealBackendReportsLoss) {
  HarnessConfig c = sim_cfg();
  c.backend = Backend::kReal;
  Harness h(c);
  auto model = build_model(h.engine(), ModelSpec::vgg_tiny());
  model->init(h.engine(), 3);
  Trainer trainer(h, *model);
  const auto m = trainer.run_iteration();
  EXPECT_GT(m.loss, 0.0f);
  EXPECT_TRUE(std::isfinite(m.loss));
}

}  // namespace
}  // namespace ca::dnn
