// Numeric gradient checks: for each differentiable op, build a small net
// containing it, compute the loss gradient with the tape, and compare
// against central finite differences.  This validates both the reference
// backward kernels and the engine's accumulation/routing logic.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "dnn/harness.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

class GradCheck : public ::testing::Test {
 protected:
  GradCheck() : harness_(config()) {}

  static HarnessConfig config() {
    HarnessConfig cfg;
    cfg.mode = Mode::kCaL;  // no eager retire: keep tensors inspectable
    cfg.dram_bytes = 16 * util::MiB;
    cfg.nvram_bytes = 64 * util::MiB;
    cfg.backend = Backend::kReal;
    return cfg;
  }

  /// loss_fn must run a fresh forward pass and return the loss.
  /// Checks d(loss)/d(target[i]) for a few elements.
  void check(Tensor& target, const std::function<float()>& loss_fn,
             double tol = 0.05) {
    auto& e = harness_.engine();
    // Analytic gradient.
    loss_fn();
    e.backward();
    Tensor g = e.grad(target);
    ASSERT_TRUE(g.valid());
    std::vector<float> analytic(g.numel());
    g.array().with_read([&](std::span<const float> s) {
      std::copy(s.begin(), s.end(), analytic.begin());
    });
    e.end_iteration();

    // Numeric gradient for a handful of elements.
    const std::size_t n = target.numel();
    const std::size_t stride = std::max<std::size_t>(1, n / 5);
    for (std::size_t i = 0; i < n; i += stride) {
      const float eps = 1e-2f;
      float original = 0.0f;
      target.array().with_write([&](std::span<float> s) {
        original = s[i];
        s[i] = original + eps;
      });
      const float up = loss_fn();
      e.end_iteration();
      target.array().with_write([&](std::span<float> s) {
        s[i] = original - eps;
      });
      const float down = loss_fn();
      e.end_iteration();
      target.array().with_write([&](std::span<float> s) { s[i] = original; });

      const double numeric = (up - down) / (2.0 * eps);
      const double scale =
          std::max({std::abs(numeric), std::abs(double{analytic[i]}), 0.05});
      EXPECT_NEAR(analytic[i], numeric, tol * scale)
          << "element " << i << " of " << target.array().object()->name();
    }
  }

  Harness harness_;
};

TEST_F(GradCheck, Conv2dWeights) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 2, 4, 4}, "x");
  Tensor w = e.parameter({3, 2, 3, 3}, "w");
  Tensor b = e.parameter({3}, "b");
  Tensor hw = e.parameter({4, 3}, "hw");
  Tensor hb = e.parameter({4}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(w, 0.4f, 2);
  e.fill_normal(b, 0.1f, 3);
  e.fill_normal(hw, 0.5f, 4);
  e.fill_zero(hb);
  e.fill_labels(labels, 4, 5);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.conv2d(x, w, b, 1, 1));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(w, loss);
  check(b, loss);
}

TEST_F(GradCheck, Conv2dInputAndStride) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({1, 2, 6, 6}, "x");
  Tensor w = e.parameter({2, 2, 3, 3}, "w");
  Tensor b = e.parameter({2}, "b");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({1}, "labels");
  e.fill_normal(x, 1.0f, 11);
  e.fill_normal(w, 0.4f, 12);
  e.fill_zero(b);
  e.fill_normal(hw, 0.5f, 13);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 14);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.conv2d(x, w, b, 2, 1));  // stride 2
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(x, loss);
}

TEST_F(GradCheck, DenseWeightsAndInput) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({3, 5}, "x");
  Tensor w = e.parameter({4, 5}, "w");
  Tensor b = e.parameter({4}, "b");
  Tensor labels = e.tensor({3}, "labels");
  e.fill_normal(x, 1.0f, 21);
  e.fill_normal(w, 0.4f, 22);
  e.fill_normal(b, 0.1f, 23);
  e.fill_labels(labels, 4, 24);
  auto loss = [&] { return e.softmax_ce_loss(e.dense(x, w, b), labels); };
  check(w, loss);
  check(b, loss);
  check(x, loss);
}

TEST_F(GradCheck, ReluChain) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 6}, "x");
  Tensor w = e.parameter({3, 6}, "w");
  Tensor b = e.parameter({3}, "b");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 31);
  e.fill_normal(w, 0.6f, 32);
  e.fill_normal(b, 0.3f, 33);  // offsets keep most units away from the kink
  e.fill_labels(labels, 3, 34);
  auto loss = [&] {
    Tensor h1 = e.dense(x, w, b);
    // ReLU on rank-2 via a 4D reshape-free path: use rank-4 tensors.
    return e.softmax_ce_loss(h1, labels);
  };
  // Plain check to exercise dense; relu is covered in the conv nets below.
  check(w, loss);
}

TEST_F(GradCheck, ReluConvNet) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 2, 4, 4}, "x");
  Tensor w = e.parameter({2, 2, 3, 3}, "w");
  Tensor b = e.parameter({2}, "b");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 41);
  e.fill_normal(w, 0.5f, 42);
  e.fill_normal(b, 0.5f, 43);
  e.fill_normal(hw, 0.5f, 44);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 45);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.relu(e.conv2d(x, w, b, 1, 1)));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(w, loss);
}

TEST_F(GradCheck, MaxPoolNet) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({1, 2, 4, 4}, "x");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({1}, "labels");
  e.fill_normal(x, 1.0f, 51);
  e.fill_normal(hw, 0.5f, 52);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 53);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.maxpool2(x));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(x, loss);
}

TEST_F(GradCheck, BatchNormNet) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 2, 3, 3}, "x");
  Tensor gamma = e.parameter({2}, "gamma");
  Tensor beta = e.parameter({2}, "beta");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 61);
  e.fill_const(gamma, 1.2f);
  e.fill_const(beta, 0.1f);
  e.fill_normal(hw, 0.5f, 62);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 63);
  auto loss = [&] {
    Tensor y = e.global_avgpool(e.batchnorm(x, gamma, beta));
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(gamma, loss);
  check(beta, loss);
  check(x, loss, 0.08);  // BN input grads are numerically touchier
}

TEST_F(GradCheck, ResidualAddNet) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({2, 2, 4, 4}, "x");
  Tensor w = e.parameter({2, 2, 3, 3}, "w");
  Tensor b = e.parameter({2}, "b");
  Tensor hw = e.parameter({3, 2}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 71);
  e.fill_normal(w, 0.4f, 72);
  e.fill_zero(b);
  e.fill_normal(hw, 0.5f, 73);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 74);
  auto loss = [&] {
    Tensor branch = e.conv2d(x, w, b, 1, 1);
    Tensor y = e.global_avgpool(e.add(branch, x));  // residual
    return e.softmax_ce_loss(e.dense(y, hw, hb), labels);
  };
  check(w, loss);
  check(x, loss);  // receives gradient from both paths
}

TEST_F(GradCheck, ConcatNet) {
  auto& e = harness_.engine();
  Tensor x = e.tensor({1, 2, 4, 4}, "x");
  Tensor w = e.parameter({3, 2, 3, 3}, "w");
  Tensor b = e.parameter({3}, "b");
  Tensor hw = e.parameter({4, 5}, "hw");
  Tensor hb = e.parameter({4}, "hb");
  Tensor labels = e.tensor({1}, "labels");
  e.fill_normal(x, 1.0f, 81);
  e.fill_normal(w, 0.4f, 82);
  e.fill_zero(b);
  e.fill_normal(hw, 0.4f, 83);
  e.fill_zero(hb);
  e.fill_labels(labels, 4, 84);
  auto loss = [&] {
    Tensor t = e.conv2d(x, w, b, 1, 1);    // (1,3,4,4)
    Tensor y = e.concat(x, t);             // (1,5,4,4) -- DenseNet pattern
    Tensor p = e.global_avgpool(y);        // (1,5)
    return e.softmax_ce_loss(e.dense(p, hw, hb), labels);
  };
  check(w, loss);
  check(x, loss);  // gradient from both the concat slot and the conv
}

}  // namespace
}  // namespace ca::dnn
