// Tests for gradient bookkeeping corner cases: diamond graphs where the
// same pass-through gradient reaches several producers (the copy-on-write
// path), deep residual chains, and mixed accumulate orders.
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/harness.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

class GradSharing : public ::testing::Test {
 protected:
  GradSharing() : harness_(config()) {}

  static HarnessConfig config() {
    HarnessConfig cfg;
    cfg.mode = Mode::kCaL;  // keep tensors inspectable
    cfg.dram_bytes = 16 * util::MiB;
    cfg.nvram_bytes = 64 * util::MiB;
    cfg.backend = Backend::kReal;
    return cfg;
  }

  float run_loss(const std::function<Tensor(Engine&, Tensor)>& body,
                 std::vector<float>* grad_x_out = nullptr) {
    auto& e = harness_.engine();
    Tensor x = e.tensor({2, 2, 4, 4}, "x");
    e.fill_normal(x, 1.0f, 5);
    Tensor hw = e.parameter({3, 2}, "hw");
    Tensor hb = e.parameter({3}, "hb");
    e.fill_normal(hw, 0.5f, 6);
    e.fill_zero(hb);
    Tensor labels = e.tensor({2}, "labels");
    e.fill_labels(labels, 3, 7);

    Tensor out = body(e, x);
    const float loss =
        e.softmax_ce_loss(e.dense(e.global_avgpool(out), hw, hb), labels);
    e.backward();
    if (grad_x_out != nullptr) {
      Tensor g = e.grad(x);
      EXPECT_TRUE(g.valid());
      grad_x_out->resize(g.numel());
      g.array().with_read([&](std::span<const float> s) {
        std::copy(s.begin(), s.end(), grad_x_out->begin());
      });
    }
    e.end_iteration();
    return loss;
  }

  Harness harness_;
};

TEST_F(GradSharing, DiamondOfAddsUsesCopyOnWrite) {
  // x -> a=relu(x), b=relu(a), c=relu(a); out = add(add(a, b), c).
  // a's gradient receives the shared pass-through grad from two adds plus
  // relu backward contributions: the COW path must fire without
  // corrupting either accumulator.
  std::vector<float> gx;
  run_loss(
      [](Engine& e, Tensor x) {
        Tensor a = e.relu(x);
        Tensor b = e.relu(a);
        Tensor c = e.relu(a);
        return e.add(e.add(a, b), c);
      },
      &gx);
  for (const float g : gx) EXPECT_TRUE(std::isfinite(g));
  // With positive-biased inputs at least some gradient flows.
  double norm = 0.0;
  for (const float g : gx) norm += std::abs(g);
  EXPECT_GT(norm, 0.0);
}

TEST_F(GradSharing, DiamondGradientMatchesFiniteDifference) {
  auto& e = harness_.engine();
  auto body = [](Engine& eng, Tensor x) {
    Tensor a = eng.relu(x);
    Tensor b = eng.relu(a);
    return eng.add(a, b);
  };
  // Analytic gradient for one element vs central difference.
  Tensor x = e.tensor({1, 1, 2, 2}, "x");
  Tensor hw = e.parameter({2, 1}, "hw");
  Tensor hb = e.parameter({2}, "hb");
  Tensor labels = e.tensor({1}, "labels");
  x.array().with_write([](std::span<float> s) {
    s[0] = 0.4f; s[1] = -0.3f; s[2] = 1.2f; s[3] = 0.8f;
  });
  e.fill_normal(hw, 0.7f, 2);
  e.fill_zero(hb);
  e.fill_labels(labels, 2, 3);

  auto loss = [&] {
    Tensor out = body(e, x);
    return e.softmax_ce_loss(e.dense(e.global_avgpool(out), hw, hb), labels);
  };
  loss();
  e.backward();
  Tensor g = e.grad(x);
  ASSERT_TRUE(g.valid());
  float analytic0 = 0.0f;
  g.array().with_read([&](std::span<const float> s) { analytic0 = s[0]; });
  e.end_iteration();

  const float eps = 1e-2f;
  x.array().with_write([&](std::span<float> s) { s[0] = 0.4f + eps; });
  const float up = loss();
  e.end_iteration();
  x.array().with_write([&](std::span<float> s) { s[0] = 0.4f - eps; });
  const float down = loss();
  e.end_iteration();
  const double numeric = (up - down) / (2.0 * eps);
  EXPECT_NEAR(analytic0, numeric, 0.05 * std::max(std::abs(numeric), 0.05));
}

TEST_F(GradSharing, DeepResidualChain) {
  // Eight stacked residual adds: gradients accumulate down the skip path.
  std::vector<float> gx;
  const float loss = run_loss(
      [](Engine& e, Tensor x) {
        Tensor cur = e.relu(x);
        for (int i = 0; i < 8; ++i) {
          cur = e.add(e.relu(cur), cur);
        }
        return cur;
      },
      &gx);
  EXPECT_TRUE(std::isfinite(loss));
  for (const float g : gx) EXPECT_TRUE(std::isfinite(g));
}

TEST_F(GradSharing, NoGradLeaksAfterIteration) {
  auto& e = harness_.engine();
  run_loss([](Engine& eng, Tensor x) {
    Tensor a = eng.relu(x);
    return eng.add(a, eng.relu(a));
  });
  // run_loss's local input/label handles dropped at its return; collect
  // them, after which only parameters survive.
  harness_.runtime().gc_collect();
  EXPECT_EQ(harness_.runtime().manager().live_objects(),
            e.parameters().size());
}

TEST(EngineHooks, KernelHookFiresPerLaunch) {
  HarnessConfig cfg;
  cfg.mode = Mode::kCaLM;
  cfg.dram_bytes = 8 * util::MiB;
  cfg.nvram_bytes = 16 * util::MiB;
  cfg.backend = Backend::kReal;
  Harness h(cfg);
  auto& e = h.engine();
  int hooks = 0;
  e.set_kernel_hook([&] { ++hooks; });
  Tensor x = e.tensor({1, 1, 4, 4});
  e.relu(x);
  e.maxpool2(x);
  EXPECT_EQ(hooks, 2);
  e.set_kernel_hook(nullptr);
  e.relu(x);
  EXPECT_EQ(hooks, 2);
  e.end_iteration();
}

TEST(TypedArrays, NonFloatElementTypes) {
  core::Runtime rt(
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB),
      [](dm::DataManager& dm) {
        return std::make_unique<policy::LruPolicy>(
            dm, policy::LruPolicyConfig{.min_migratable = 0});
      });
  core::CachedArray<std::uint64_t> ids(rt, 1024, "ids");
  ids.with_write([](std::span<std::uint64_t> s) {
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = i * i;
  });
  struct Record {
    std::int32_t key;
    float value;
  };
  core::CachedArray<Record> records(rt, 256, "records");
  records.with_write([](std::span<Record> s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = {static_cast<std::int32_t>(i), 0.5f * static_cast<float>(i)};
    }
  });
  // Round-trip through an eviction.
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  lru.evict(*ids.object());
  lru.evict(*records.object());
  ids.with_read([](std::span<const std::uint64_t> s) {
    EXPECT_EQ(s[31], 31u * 31u);
  });
  records.with_read([](std::span<const Record> s) {
    EXPECT_EQ(s[100].key, 100);
    EXPECT_FLOAT_EQ(s[100].value, 50.0f);
  });
}

}  // namespace
}  // namespace ca::dnn
