#include "dnn/tensor.hpp"

#include <gtest/gtest.h>

#include "dnn/harness.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

TEST(Shape, RankAndNumel) {
  Shape s{2, 3, 4, 5};
  EXPECT_EQ(s.rank(), 4u);
  EXPECT_EQ(s.numel(), 120u);
  EXPECT_EQ(s.n(), 2u);
  EXPECT_EQ(s.c(), 3u);
  EXPECT_EQ(s.h(), 4u);
  EXPECT_EQ(s.w(), 5u);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{3, 2}));
  EXPECT_FALSE((Shape{2, 3}) == (Shape{2, 3, 1}));
}

TEST(Shape, IndexOutOfRangeThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], InternalError);
}

TEST(Shape, Str) { EXPECT_EQ((Shape{2, 3, 4, 4}).str(), "(2x3x4x4)"); }

TEST(Tensor, DefaultIsInvalid) {
  Tensor t;
  EXPECT_FALSE(t.valid());
  EXPECT_EQ(t.object(), nullptr);
}

TEST(Tensor, BackedByCachedArray) {
  HarnessConfig cfg;
  cfg.mode = Mode::kCaLM;
  cfg.dram_bytes = 4 * util::MiB;
  cfg.nvram_bytes = 8 * util::MiB;
  cfg.backend = Backend::kReal;
  Harness h(cfg);
  Tensor t(h.runtime(), {4, 4}, "t");
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.numel(), 16u);
  EXPECT_EQ(t.bytes(), 64u);
  EXPECT_EQ(t.object()->size(), 64u);
  EXPECT_EQ(t.object()->name(), "t");
}

TEST(Tensor, IdentityComparesObjects) {
  HarnessConfig cfg;
  cfg.mode = Mode::kCaLM;
  cfg.dram_bytes = 4 * util::MiB;
  cfg.nvram_bytes = 8 * util::MiB;
  Harness h(cfg);
  Tensor a(h.runtime(), {4});
  Tensor b = a;
  Tensor c(h.runtime(), {4});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace ca::dnn
