// Parameterized property sweep over convolution geometries: for every
// (channels, spatial, kernel, stride, pad) combination, the engine's
// analytic weight gradient must match central finite differences.  This
// covers the index arithmetic corners (padding clipping, strided output
// maps, 1x1 kernels, channel mixing) in one sweep.
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/harness.hpp"
#include "dnn/ops_real.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

struct ConvCase {
  std::size_t cin, cout, hw, k, stride, pad;
};

class ConvShapeSweep : public ::testing::TestWithParam<ConvCase> {
 protected:
  ConvShapeSweep() : harness_(config()) {}

  static HarnessConfig config() {
    HarnessConfig cfg;
    cfg.mode = Mode::kCaL;
    cfg.dram_bytes = 16 * util::MiB;
    cfg.nvram_bytes = 64 * util::MiB;
    cfg.backend = Backend::kReal;
    return cfg;
  }

  Harness harness_;
};

TEST_P(ConvShapeSweep, WeightGradMatchesFiniteDifferences) {
  const auto p = GetParam();
  // Output geometry must be well-formed for this case.
  real::ConvDims d{.n = 2, .cin = p.cin, .h = p.hw, .w = p.hw,
                   .cout = p.cout, .k = p.k, .stride = p.stride,
                   .pad = p.pad};
  ASSERT_GE(p.hw + 2 * p.pad, p.k);

  auto& e = harness_.engine();
  Tensor x = e.tensor({2, p.cin, p.hw, p.hw}, "x");
  Tensor w = e.parameter({p.cout, p.cin, p.k, p.k}, "w");
  Tensor b = e.parameter({p.cout}, "b");
  Tensor hw_ = e.parameter({3, p.cout}, "hw");
  Tensor hb = e.parameter({3}, "hb");
  Tensor labels = e.tensor({2}, "labels");
  e.fill_normal(x, 1.0f, 1);
  e.fill_normal(w, 0.4f, 2);
  e.fill_normal(b, 0.1f, 3);
  e.fill_normal(hw_, 0.5f, 4);
  e.fill_zero(hb);
  e.fill_labels(labels, 3, 5);

  auto loss = [&] {
    Tensor y = e.global_avgpool(e.conv2d(x, w, b, p.stride, p.pad));
    return e.softmax_ce_loss(e.dense(y, hw_, hb), labels);
  };

  loss();
  e.backward();
  Tensor g = e.grad(w);
  ASSERT_TRUE(g.valid());
  std::vector<float> analytic(g.numel());
  g.array().with_read([&](std::span<const float> s) {
    std::copy(s.begin(), s.end(), analytic.begin());
  });
  e.end_iteration();

  const std::size_t n = w.numel();
  const std::size_t stride = std::max<std::size_t>(1, n / 4);
  for (std::size_t i = 0; i < n; i += stride) {
    const float eps = 1e-2f;
    float original = 0.0f;
    w.array().with_write([&](std::span<float> s) {
      original = s[i];
      s[i] = original + eps;
    });
    const float up = loss();
    e.end_iteration();
    w.array().with_write([&](std::span<float> s) { s[i] = original - eps; });
    const float down = loss();
    e.end_iteration();
    w.array().with_write([&](std::span<float> s) { s[i] = original; });

    const double numeric = (up - down) / (2.0 * eps);
    const double scale =
        std::max({std::abs(numeric), std::abs(double{analytic[i]}), 0.05});
    EXPECT_NEAR(analytic[i], numeric, 0.06 * scale)
        << "weight " << i << " cin=" << p.cin << " k=" << p.k
        << " stride=" << p.stride << " pad=" << p.pad;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvShapeSweep,
    ::testing::Values(ConvCase{1, 1, 4, 1, 1, 0},   // pointwise
                      ConvCase{2, 3, 4, 1, 1, 0},   // 1x1 channel mixing
                      ConvCase{1, 2, 6, 3, 1, 1},   // standard 3x3 same
                      ConvCase{2, 2, 6, 3, 2, 1},   // strided downsample
                      ConvCase{3, 2, 5, 3, 1, 0},   // valid (no pad)
                      ConvCase{1, 1, 6, 5, 1, 2},   // big kernel, big pad
                      ConvCase{2, 4, 4, 3, 1, 2},   // pad > natural
                      ConvCase{4, 1, 4, 3, 2, 1}),  // many-in one-out strided
    [](const ::testing::TestParamInfo<ConvCase>& info) {
      const auto& p = info.param;
      return "cin" + std::to_string(p.cin) + "cout" + std::to_string(p.cout) +
             "hw" + std::to_string(p.hw) + "k" + std::to_string(p.k) + "s" +
             std::to_string(p.stride) + "p" + std::to_string(p.pad);
    });

}  // namespace
}  // namespace ca::dnn
