#include <cmath>
// Numeric correctness of the reference kernels against hand-computed or
// independently derived values.
#include "dnn/ops_real.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ca::dnn::real {
namespace {

TEST(OpsReal, Conv2dIdentityKernel) {
  // 1x1 conv with weight 1 and bias 0 is the identity.
  ConvDims d{.n = 1, .cin = 1, .h = 2, .w = 2, .cout = 1, .k = 1,
             .stride = 1, .pad = 0};
  const std::vector<float> x = {1, 2, 3, 4};
  const std::vector<float> w = {1};
  const std::vector<float> b = {0};
  std::vector<float> y(4);
  conv2d_fwd(x.data(), w.data(), b.data(), y.data(), d);
  EXPECT_EQ(y, x);
}

TEST(OpsReal, Conv2dKnownValues) {
  // 3x3 all-ones kernel with pad 1 computes neighborhood sums.
  ConvDims d{.n = 1, .cin = 1, .h = 3, .w = 3, .cout = 1, .k = 3,
             .stride = 1, .pad = 1};
  const std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const std::vector<float> w(9, 1.0f);
  const std::vector<float> b = {0};
  std::vector<float> y(9);
  conv2d_fwd(x.data(), w.data(), b.data(), y.data(), d);
  EXPECT_FLOAT_EQ(y[4], 45.0f);            // center: sum of all
  EXPECT_FLOAT_EQ(y[0], 1 + 2 + 4 + 5);    // corner
  EXPECT_FLOAT_EQ(y[1], 1 + 2 + 3 + 4 + 5 + 6);
}

TEST(OpsReal, Conv2dBias) {
  ConvDims d{.n = 1, .cin = 1, .h = 1, .w = 1, .cout = 2, .k = 1,
             .stride = 1, .pad = 0};
  const std::vector<float> x = {3};
  const std::vector<float> w = {2, -1};
  const std::vector<float> b = {10, 20};
  std::vector<float> y(2);
  conv2d_fwd(x.data(), w.data(), b.data(), y.data(), d);
  EXPECT_FLOAT_EQ(y[0], 16.0f);
  EXPECT_FLOAT_EQ(y[1], 17.0f);
}

TEST(OpsReal, Conv2dStrideShrinksOutput) {
  ConvDims d{.n = 1, .cin = 1, .h = 4, .w = 4, .cout = 1, .k = 3,
             .stride = 2, .pad = 1};
  EXPECT_EQ(d.hout(), 2u);
  EXPECT_EQ(d.wout(), 2u);
}

TEST(OpsReal, Conv2dBackwardBiasSumsGradients) {
  ConvDims d{.n = 2, .cin = 1, .h = 2, .w = 2, .cout = 1, .k = 1,
             .stride = 1, .pad = 0};
  const std::vector<float> gy = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<float> gb(1);
  conv2d_bwd_bias(gy.data(), gb.data(), d);
  EXPECT_FLOAT_EQ(gb[0], 36.0f);
}

TEST(OpsReal, ReluForwardAndBackward) {
  const std::vector<float> x = {-1, 0, 2, -3, 5};
  std::vector<float> y(5);
  relu_fwd(x.data(), y.data(), 5);
  EXPECT_EQ(y, (std::vector<float>{0, 0, 2, 0, 5}));
  const std::vector<float> gy = {1, 1, 1, 1, 1};
  std::vector<float> gx(5);
  relu_bwd(x.data(), gy.data(), gx.data(), 5);
  EXPECT_EQ(gx, (std::vector<float>{0, 0, 1, 0, 1}));
}

TEST(OpsReal, MaxPoolPicksMaxima) {
  // 1 channel, 4x4.
  const std::vector<float> x = {1, 2, 5, 6,  //
                                3, 4, 7, 8,  //
                                9, 1, 2, 3,  //
                                1, 2, 4, 1};
  std::vector<float> y(4);
  maxpool2_fwd(x.data(), y.data(), 1, 1, 4, 4);
  EXPECT_EQ(y, (std::vector<float>{4, 8, 9, 4}));
}

TEST(OpsReal, MaxPoolBackwardRoutesToArgmax) {
  const std::vector<float> x = {1, 2,  //
                                3, 4};
  const std::vector<float> gy = {10};
  std::vector<float> gx(4);
  maxpool2_bwd(x.data(), gy.data(), gx.data(), 1, 1, 2, 2);
  EXPECT_EQ(gx, (std::vector<float>{0, 0, 0, 10}));
}

TEST(OpsReal, GlobalAvgPool) {
  const std::vector<float> x = {1, 2, 3, 4,  // channel 0
                                10, 10, 10, 10};  // channel 1
  std::vector<float> y(2);
  global_avgpool_fwd(x.data(), y.data(), 1, 2, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
  const std::vector<float> gy = {4, 8};
  std::vector<float> gx(8);
  global_avgpool_bwd(gy.data(), gx.data(), 1, 2, 2, 2);
  EXPECT_FLOAT_EQ(gx[0], 1.0f);
  EXPECT_FLOAT_EQ(gx[4], 2.0f);
}

TEST(OpsReal, BatchNormNormalizesPerChannel) {
  // Two channels with different scales; after BN each channel has ~zero
  // mean and ~unit variance (gamma=1, beta=0).
  const std::size_t n = 2, c = 2, h = 2, w = 2;
  std::vector<float> x(n * c * h * w);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 7) * (i < 8 ? 1.0f : 100.0f);
  }
  const std::vector<float> gamma = {1, 1};
  const std::vector<float> beta = {0, 0};
  std::vector<float> y(x.size());
  std::vector<float> mean(c);
  std::vector<float> istd(c);
  batchnorm_fwd(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                istd.data(), n, c, h, w, 1e-5f);
  for (std::size_t ch = 0; ch < c; ++ch) {
    double sum = 0.0;
    double sq = 0.0;
    for (std::size_t b = 0; b < n; ++b) {
      for (std::size_t j = 0; j < h * w; ++j) {
        const float v = y[(b * c + ch) * h * w + j];
        sum += v;
        sq += static_cast<double>(v) * v;
      }
    }
    EXPECT_NEAR(sum / 8.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 8.0, 1.0, 1e-2);
  }
}

TEST(OpsReal, BatchNormGammaBetaAffine) {
  const std::size_t n = 1, c = 1, h = 1, w = 2;
  const std::vector<float> x = {0, 2};
  const std::vector<float> gamma = {3};
  const std::vector<float> beta = {5};
  std::vector<float> y(2), mean(1), istd(1);
  batchnorm_fwd(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                istd.data(), n, c, h, w, 1e-8f);
  // Normalized values are -1 and +1 -> y = beta -/+ gamma.
  EXPECT_NEAR(y[0], 2.0f, 1e-3);
  EXPECT_NEAR(y[1], 8.0f, 1e-3);
}

TEST(OpsReal, DenseMatchesManualMatmul) {
  // x: 2x3, w: 2x3 (out,in), b: 2.
  const std::vector<float> x = {1, 2, 3, 4, 5, 6};
  const std::vector<float> w = {1, 0, -1, 2, 2, 2};
  const std::vector<float> b = {0.5f, -0.5f};
  std::vector<float> y(4);
  dense_fwd(x.data(), w.data(), b.data(), y.data(), 2, 3, 2);
  EXPECT_FLOAT_EQ(y[0], 1 - 3 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 2 + 4 + 6 - 0.5f);
  EXPECT_FLOAT_EQ(y[2], 4 - 6 + 0.5f);
  EXPECT_FLOAT_EQ(y[3], 8 + 10 + 12 - 0.5f);
}

TEST(OpsReal, DenseBackwardShapesAndValues) {
  const std::vector<float> x = {1, 2};   // 1x2
  const std::vector<float> w = {3, 4};   // 1x2
  const std::vector<float> gy = {2};     // 1x1
  std::vector<float> gx(2), gw(2), gb(1);
  dense_bwd_data(w.data(), gy.data(), gx.data(), 1, 2, 1);
  dense_bwd_weights(x.data(), gy.data(), gw.data(), 1, 2, 1);
  dense_bwd_bias(gy.data(), gb.data(), 1, 1);
  EXPECT_EQ(gx, (std::vector<float>{6, 8}));
  EXPECT_EQ(gw, (std::vector<float>{2, 4}));
  EXPECT_EQ(gb, (std::vector<float>{2}));
}

TEST(OpsReal, SoftmaxCeUniformLogits) {
  const std::vector<float> logits = {0, 0, 0, 0};
  const std::vector<float> labels = {2};
  std::vector<float> probs(4);
  const float loss = softmax_ce_fwd(logits.data(), labels.data(),
                                    probs.data(), 1, 4);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5);
  for (const float p : probs) EXPECT_NEAR(p, 0.25f, 1e-6);
}

TEST(OpsReal, SoftmaxCeBackwardIsProbsMinusOnehot) {
  const std::vector<float> probs = {0.25f, 0.25f, 0.25f, 0.25f};
  const std::vector<float> labels = {2};
  std::vector<float> gx(4);
  softmax_ce_bwd(probs.data(), labels.data(), gx.data(), 1, 4);
  EXPECT_FLOAT_EQ(gx[0], 0.25f);
  EXPECT_FLOAT_EQ(gx[2], -0.75f);
}

TEST(OpsReal, SoftmaxCeConfidentCorrectIsLowLoss) {
  const std::vector<float> logits = {10, 0, 0};
  const std::vector<float> labels = {0};
  std::vector<float> probs(3);
  EXPECT_LT(softmax_ce_fwd(logits.data(), labels.data(), probs.data(), 1, 3),
            0.01f);
}

TEST(OpsReal, ConcatAndSplitRoundTrip) {
  // n=1, ca=1, cb=2, h=w=2.
  const std::vector<float> a = {1, 2, 3, 4};
  const std::vector<float> b = {5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<float> y(12);
  concat_fwd(a.data(), b.data(), y.data(), 1, 1, 2, 2, 2);
  EXPECT_FLOAT_EQ(y[0], 1);
  EXPECT_FLOAT_EQ(y[4], 5);
  EXPECT_FLOAT_EQ(y[11], 12);
  std::vector<float> ga(4), gb(8);
  concat_bwd(y.data(), ga.data(), gb.data(), 1, 1, 2, 2, 2);
  EXPECT_EQ(ga, a);
  EXPECT_EQ(gb, b);
}

TEST(OpsReal, AddAndAccumulateAndSgd) {
  std::vector<float> a = {1, 2};
  const std::vector<float> b = {10, 20};
  std::vector<float> y(2);
  add_fwd(a.data(), b.data(), y.data(), 2);
  EXPECT_EQ(y, (std::vector<float>{11, 22}));
  accumulate(a.data(), b.data(), 2);
  EXPECT_EQ(a, (std::vector<float>{11, 22}));
  std::vector<float> w = {1, 1};
  const std::vector<float> g = {10, -10};
  sgd_update(w.data(), g.data(), 0.1f, 2);
  EXPECT_FLOAT_EQ(w[0], 0.0f);
  EXPECT_FLOAT_EQ(w[1], 2.0f);
}

}  // namespace
}  // namespace ca::dnn::real
