#include "twolm/direct_mapped_cache.hpp"

#include <gtest/gtest.h>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::twolm {
namespace {

class CacheFixture : public ::testing::Test {
 protected:
  CacheFixture()
      : platform_(sim::Platform::cascade_lake_scaled(4 * util::KiB,
                                                     64 * util::KiB)) {}

  DirectMappedCache make(std::size_t capacity = 4 * util::KiB,
                         std::size_t block = 64) {
    CacheConfig cfg;
    cfg.capacity = capacity;
    cfg.block_size = block;
    return DirectMappedCache(cfg, platform_, counters_);
  }

  sim::Platform platform_;
  telemetry::TrafficCounters counters_;
};

TEST_F(CacheFixture, GeometryIsDerivedFromConfig) {
  auto c = make(4 * util::KiB, 64);
  EXPECT_EQ(c.num_sets(), 64u);
}

TEST_F(CacheFixture, ColdAccessesMissClean) {
  auto c = make();
  c.access(0, 4 * util::KiB, /*write=*/false);
  const auto& s = c.stats();
  EXPECT_EQ(s.accesses, 64u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.clean_misses, 64u);
  EXPECT_EQ(s.dirty_misses, 0u);
}

TEST_F(CacheFixture, RepeatedReadsHit) {
  auto c = make();
  c.access(0, 4 * util::KiB, false);
  c.access(0, 4 * util::KiB, false);
  EXPECT_EQ(c.stats().hits, 64u);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.5);
}

TEST_F(CacheFixture, ConflictingAddressesEvict) {
  auto c = make();  // 4 KiB cache: addresses 4 KiB apart conflict
  c.access(0, 64, false);
  c.access(4 * util::KiB, 64, false);  // same set, different tag
  c.access(0, 64, false);              // evicted: miss again
  EXPECT_EQ(c.stats().hits, 0u);
  EXPECT_EQ(c.stats().clean_misses, 3u);
}

TEST_F(CacheFixture, DirtyEvictionCountsAndWritesBack) {
  auto c = make();
  c.access(0, 64, /*write=*/true);             // miss, fill, dirty
  const auto nvram_writes_before =
      counters_.device(sim::kSlow).bytes_written;
  c.access(4 * util::KiB, 64, false);          // conflict: dirty eviction
  EXPECT_EQ(c.stats().dirty_misses, 1u);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written,
            nvram_writes_before + 64);
}

TEST_F(CacheFixture, WriteAllocateFillsOnWriteMiss) {
  auto c = make();
  const auto nvram_reads_before = counters_.device(sim::kSlow).bytes_read;
  c.access(0, 64, /*write=*/true);
  // Even a full-block write first fills the block from NVRAM -- the write
  // amplification the paper attributes to 2LM.
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read,
            nvram_reads_before + 64);
}

TEST_F(CacheFixture, CleanEvictionDoesNotWriteBack) {
  auto c = make();
  c.access(0, 64, false);
  const auto before = counters_.device(sim::kSlow).bytes_written;
  c.access(4 * util::KiB, 64, false);  // clean conflict
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, before);
}

TEST_F(CacheFixture, PartialBlockAccessTouchesWholeBlock) {
  auto c = make();
  c.access(10, 4, false);  // 4 bytes -> one whole 64 B block
  EXPECT_EQ(c.stats().accesses, 1u);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read, 64u);
}

TEST_F(CacheFixture, RangeSpanningBlocksCountsEachBlock) {
  auto c = make();
  c.access(60, 8, false);  // straddles two blocks
  EXPECT_EQ(c.stats().accesses, 2u);
}

TEST_F(CacheFixture, AccessTimeGrowsWithMissRate) {
  auto hot = make();
  hot.access(0, 4 * util::KiB, false);  // warm up
  const double hit_time = hot.access(0, 4 * util::KiB, false);

  auto cold = make();
  const double miss_time = cold.access(0, 4 * util::KiB, false);
  EXPECT_GT(miss_time, 2.0 * hit_time);
}

TEST_F(CacheFixture, DirtyMissCostsMoreThanCleanMiss) {
  auto a = make();
  a.access(0, 4 * util::KiB, true);  // fill dirty
  const double dirty_conflict = a.access(4 * util::KiB, 4 * util::KiB, false);

  auto b = make();
  b.access(0, 4 * util::KiB, false);  // fill clean
  const double clean_conflict = b.access(4 * util::KiB, 4 * util::KiB, false);
  EXPECT_GT(dirty_conflict, clean_conflict);
}

TEST_F(CacheFixture, AddressReuseAfterFreeHitsInCache) {
  // The Fig. 3/4 mechanism: eager freeing lets the allocator reuse
  // addresses whose blocks are still cached, turning misses into hits.
  auto c = make();
  c.access(0, 2 * util::KiB, true);   // "object A" written
  c.access(0, 2 * util::KiB, true);   // "object B" at the reused address
  EXPECT_EQ(c.stats().hits, 32u);
  EXPECT_EQ(c.stats().misses(), 32u);
}

TEST_F(CacheFixture, FlushInvalidatesEverything) {
  auto c = make();
  c.access(0, 4 * util::KiB, true);
  c.flush();
  const auto before = c.stats().dirty_misses;
  c.access(0, 4 * util::KiB, false);
  EXPECT_EQ(c.stats().dirty_misses, before);  // no dirty victims post-flush
  EXPECT_EQ(c.stats().hits, 0u);
}

TEST_F(CacheFixture, ZeroByteAccessIsFree) {
  auto c = make();
  EXPECT_DOUBLE_EQ(c.access(0, 0, false), 0.0);
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST_F(CacheFixture, StatRatesSumToOne) {
  auto c = make();
  c.access(0, 4 * util::KiB, true);
  c.access(2 * util::KiB, 4 * util::KiB, false);
  c.access(0, 1 * util::KiB, true);
  const auto& s = c.stats();
  EXPECT_NEAR(s.hit_rate() + s.clean_miss_rate() + s.dirty_miss_rate(), 1.0,
              1e-12);
}

TEST_F(CacheFixture, NonPow2BlockSizeRejected) {
  CacheConfig cfg;
  cfg.capacity = 4 * util::KiB;
  cfg.block_size = 48;
  EXPECT_THROW(DirectMappedCache(cfg, platform_, counters_), InternalError);
}

}  // namespace
}  // namespace ca::twolm
