// Tests for the set-associative extension of the 2LM cache model, plus a
// property test checking the simulator against an independent reference
// implementation on random access streams.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "twolm/direct_mapped_cache.hpp"
#include "util/align.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ca::twolm {
namespace {

class AssocFixture : public ::testing::Test {
 protected:
  AssocFixture()
      : platform_(sim::Platform::cascade_lake_scaled(4 * util::KiB,
                                                     64 * util::KiB)) {}

  DirectMappedCache make(std::size_t ways,
                         std::size_t capacity = 4 * util::KiB) {
    CacheConfig cfg;
    cfg.capacity = capacity;
    cfg.block_size = 64;
    cfg.ways = ways;
    return DirectMappedCache(cfg, platform_, counters_);
  }

  sim::Platform platform_;
  telemetry::TrafficCounters counters_;
};

TEST_F(AssocFixture, GeometryAccountsForWays) {
  auto c = make(4);
  EXPECT_EQ(c.num_sets(), 16u);  // 64 blocks / 4 ways
}

TEST_F(AssocFixture, TwoWayResolvesPingPongConflict) {
  // Addresses 0 and capacity alias in a direct-mapped cache; with 2 ways
  // they coexist.
  auto direct = make(1);
  auto assoc = make(2);
  for (int i = 0; i < 10; ++i) {
    direct.access(0, 64, false);
    direct.access(4 * util::KiB, 64, false);
    assoc.access(0, 64, false);
    assoc.access(4 * util::KiB, 64, false);
  }
  EXPECT_EQ(direct.stats().hits, 0u);       // pure ping-pong
  EXPECT_EQ(assoc.stats().hits, 18u);       // everything after the fills
}

TEST_F(AssocFixture, LruEvictsTheColdestWay) {
  auto c = make(2);  // 32 sets; set 0 aliases at multiples of 32*64 = 2 KiB
  c.access(0 * 2048, 1, false);  // A -> set 0
  c.access(1 * 2048, 1, false);  // B -> set 0 (both ways full)
  c.access(0 * 2048, 1, false);  // touch A: B becomes LRU
  c.access(2 * 2048, 1, false);  // C evicts B
  c.access(0 * 2048, 1, false);  // A still resident
  EXPECT_EQ(c.stats().hits, 2u);
  c.access(1 * 2048, 1, false);  // B was evicted: miss
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST_F(AssocFixture, FullyAssociativeHoldsAnyFittingWorkingSet) {
  // With ways == blocks (one set, pure LRU) any working set that fits is
  // all-hits after the cold fills, regardless of address alignment --
  // while the direct-mapped cache thrashes on the aliased layout.
  auto fully = make(64);  // 4 KiB / 64 B = 64 blocks, single set
  auto direct = make(1);
  // 32 blocks, all aliasing to a handful of direct-mapped sets.
  std::vector<std::size_t> addrs;
  for (std::size_t i = 0; i < 32; ++i) addrs.push_back(i * 4 * util::KiB);
  for (int round = 0; round < 10; ++round) {
    for (const auto a : addrs) {
      fully.access(a, 64, false);
      direct.access(a, 64, false);
    }
  }
  EXPECT_EQ(fully.stats().misses(), 32u);  // cold fills only
  EXPECT_EQ(fully.stats().hits, 32u * 9u);
  EXPECT_EQ(direct.stats().hits, 0u);  // every access aliases set 0
}

TEST_F(AssocFixture, InvalidGeometryRejected) {
  CacheConfig cfg;
  cfg.capacity = 4 * util::KiB;
  cfg.block_size = 64;
  cfg.ways = 3;  // not a power of two
  EXPECT_THROW(DirectMappedCache(cfg, platform_, counters_), ca::InternalError);
}

// --- property test against a reference model ------------------------------

/// A deliberately simple reference: per-set vector of (tag, dirty) in LRU
/// order, no stats trickery, no bandwidth model.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t sets, std::size_t ways)
      : sets_(sets), ways_(ways), lines_(sets) {}

  /// Returns {hit, clean_miss, dirty_miss} for one block access.
  std::array<bool, 3> access(std::size_t block, bool write) {
    auto& set = lines_[block % sets_];
    const std::uint64_t tag = block / sets_;
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == tag) {
        auto entry = *it;
        set.erase(it);
        entry.second = entry.second || write;
        set.push_back(entry);  // MRU at the back
        return {true, false, false};
      }
    }
    bool dirty_evict = false;
    if (set.size() == ways_) {
      dirty_evict = set.front().second;
      set.erase(set.begin());
    }
    set.push_back({tag, write});
    return {false, !dirty_evict, dirty_evict};
  }

 private:
  std::size_t sets_;
  std::size_t ways_;
  std::vector<std::vector<std::pair<std::uint64_t, bool>>> lines_;
};

class CacheProperty
    : public ::testing::TestWithParam<std::pair<std::size_t, std::uint64_t>> {
};

TEST_P(CacheProperty, MatchesReferenceOnRandomStreams) {
  const auto [ways, seed] = GetParam();
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(4 * util::KiB, 64 * util::KiB);
  telemetry::TrafficCounters counters;
  CacheConfig cfg;
  cfg.capacity = 4 * util::KiB;
  cfg.block_size = 64;
  cfg.ways = ways;
  DirectMappedCache cache(cfg, platform, counters);
  ReferenceCache ref(cache.num_sets(), ways);

  util::Xoshiro256 rng(seed);
  std::uint64_t hits = 0, clean = 0, dirty = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t block = rng.bounded(512);
    const bool write = rng.uniform() < 0.4;
    cache.access(block * 64, 64, write);
    const auto [h, c, d] = ref.access(block, write);
    hits += h;
    clean += c;
    dirty += d;
    if (i % 500 == 0) {
      ASSERT_EQ(cache.stats().hits, hits) << "step " << i;
      ASSERT_EQ(cache.stats().clean_misses, clean) << "step " << i;
      ASSERT_EQ(cache.stats().dirty_misses, dirty) << "step " << i;
    }
  }
  EXPECT_EQ(cache.stats().hits, hits);
  EXPECT_EQ(cache.stats().clean_misses, clean);
  EXPECT_EQ(cache.stats().dirty_misses, dirty);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, CacheProperty,
    ::testing::Values(std::pair<std::size_t, std::uint64_t>{1, 1},
                      std::pair<std::size_t, std::uint64_t>{1, 2},
                      std::pair<std::size_t, std::uint64_t>{2, 3},
                      std::pair<std::size_t, std::uint64_t>{2, 4},
                      std::pair<std::size_t, std::uint64_t>{4, 5},
                      std::pair<std::size_t, std::uint64_t>{8, 6}),
    [](const auto& info) {
      return "ways" + std::to_string(info.param.first) + "_seed" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace ca::twolm
