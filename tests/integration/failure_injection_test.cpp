// Failure injection: systematic misuse of the public APIs must produce
// typed exceptions (never corruption, never aborts), and the system must
// remain fully usable afterwards -- exceptions here are recoverable.
#include <gtest/gtest.h>

#include "core/cached_array.hpp"
#include "core/kernel_launch.hpp"
#include "dnn/harness.hpp"
#include "dnn/models.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

core::Runtime::PolicyFactory lru(policy::LruPolicyConfig cfg = {}) {
  return [cfg](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  };
}

sim::Platform tiny_platform() {
  return sim::Platform::cascade_lake_scaled(256 * util::KiB, 1 * util::MiB);
}

TEST(FailureInjection, SlowTierExhaustionThrowsOomAndRecovers) {
  core::Runtime rt(tiny_platform(), lru({.local_alloc = false}));
  std::vector<core::CachedArray<float>> hogs;
  // Slow tier: 1 MiB; each array is 256 KiB.  The fifth cannot fit.
  for (int i = 0; i < 4; ++i) hogs.emplace_back(rt, 64 * 1024);
  EXPECT_THROW(core::CachedArray<float>(rt, 64 * 1024), OutOfMemoryError);
  // The runtime is not poisoned: freeing makes room again.
  hogs.pop_back();
  rt.gc_collect();
  core::CachedArray<float> ok(rt, 64 * 1024);
  EXPECT_TRUE(ok.valid());
  rt.manager().check_invariants();
}

TEST(FailureInjection, UseAfterRetireIsTypedError) {
  core::Runtime rt(tiny_platform(), lru());
  core::CachedArray<int> a(rt, 64);
  a.retire();
  EXPECT_THROW(a.with_read([](std::span<const int>) {}), InternalError);
  EXPECT_THROW(a.with_write([](std::span<int>) {}), InternalError);
  EXPECT_THROW(a.archive(), InternalError);
  EXPECT_FALSE(a.retire());  // double retire is a harmless no-op
}

TEST(FailureInjection, EmptyArrayUse) {
  core::CachedArray<int> empty;
  EXPECT_THROW(empty.with_read([](std::span<const int>) {}), InternalError);
  EXPECT_FALSE(empty.retire());
}

TEST(FailureInjection, DataManagerMisuseIsRejected) {
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  sim::Platform platform = tiny_platform();
  dm::DataManager dm(platform, clock, counters);

  // Unknown device.
  EXPECT_THROW(dm.allocate(sim::DeviceId{7}, 64), InternalError);
  // Zero sizes.
  EXPECT_THROW(dm.create_object(0), UsageError);
  EXPECT_THROW(dm.allocate(sim::kFast, 0), UsageError);
  // Cross-object primary.
  dm::Object* a = dm.create_object(64);
  dm::Object* b = dm.create_object(64);
  dm::Region* ra = dm.allocate(sim::kFast, 64);
  dm.setprimary(*a, *ra);
  EXPECT_THROW(dm.setprimary(*b, *ra), UsageError);
  // Double destroy.
  dm.destroy_object(b);
  EXPECT_THROW(dm.destroy_object(b), UsageError);
  dm.destroy_object(a);
  dm.check_invariants();
}

TEST(FailureInjection, EvictfromWithNullCallbackRejected) {
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  sim::Platform platform = tiny_platform();
  dm::DataManager dm(platform, clock, counters);
  EXPECT_THROW(dm.evictfrom(sim::kFast, 0, 64, nullptr), InternalError);
}

TEST(FailureInjection, ExceptionDuringKernelUnpinsArguments) {
  core::Runtime rt(tiny_platform(), lru());
  core::CachedArray<int> a(rt, 64);
  core::KernelLaunch launch(rt);
  launch.reads(a);
  EXPECT_THROW(launch.run([&]() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // RAII unwound the pins: the object is movable again.
  EXPECT_FALSE(a.object()->pinned());
  auto& lru_policy = static_cast<policy::LruPolicy&>(rt.policy());
  lru_policy.evict(*a.object());
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(*a.object()),
                              sim::kSlow));
}

TEST(FailureInjection, OversizedModelFailsCleanly) {
  // A network whose single tensors exceed every tier must fail with OOM,
  // not crash.
  dnn::HarnessConfig hc;
  hc.mode = dnn::Mode::kCaLM;
  hc.dram_bytes = 256 * util::KiB;
  hc.nvram_bytes = 512 * util::KiB;
  hc.backend = dnn::Backend::kSim;
  dnn::Harness h(hc);
  dnn::ModelSpec spec = dnn::ModelSpec::vgg_tiny();
  spec.batch = 4096;  // input alone exceeds both tiers
  EXPECT_THROW(
      {
        auto model = dnn::build_model(h.engine(), spec);
        dnn::Tensor input = h.engine().tensor(model->input_shape());
        model->forward(h.engine(), input);
      },
      OutOfMemoryError);
}

TEST(FailureInjection, PolicyRefusingEverythingDegradesToSlow) {
  // A policy whose fast tier is fully pinned must still serve allocations
  // from the slow tier rather than failing.
  core::Runtime rt(tiny_platform(), lru({.min_migratable = 0}));
  std::vector<core::CachedArray<float>> pinned_arrays;
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) {
    pinned_arrays.emplace_back(rt, 16 * 1024);  // 64 KiB each: fills fast
    objs.push_back(pinned_arrays.back().object());
  }
  rt.begin_kernel(objs);  // pin all fast residents
  core::CachedArray<float> spill(rt, 16 * 1024);
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(*spill.object()),
                              sim::kSlow));
  rt.end_kernel(objs);
}

TEST(FailureInjection, GcDuringPressureLeavesConsistentState) {
  core::Runtime rt(tiny_platform(), lru({.local_alloc = false,
                                         .eager_retire = false,
                                         .min_migratable = 0}));
  for (int i = 0; i < 64; ++i) {
    core::CachedArray<float> tmp(rt, 32 * 1024);
    tmp.with_write([](std::span<float> s) { s[0] = 1.f; });
  }
  EXPECT_GE(rt.gc_stats().pressure_triggers, 1u);
  rt.gc_collect();
  rt.manager().check_invariants();
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

}  // namespace
}  // namespace ca
