// Integration tests for asynchronous staging end to end: the async
// variant of a prefetch-heavy mode must approach the Fig. 7 "perfectly
// asynchronous data movement" projection without breaking correctness.
#include <cmath>

#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

ModelSpec workload() {
  ModelSpec s;
  s.family = ModelSpec::Family::kVgg;
  s.name = "VGG async probe";
  s.stages = {4, 4};
  s.batch = 8;
  s.image = 16;
  s.classes = 10;
  s.base_channels = 16;
  s.compute_efficiency = 0.5;
  s.conv_read_passes = 4;  // read-bandwidth-sensitive: prefetching matters
  return s;
}

IterationMetrics run(bool async, Mode mode = Mode::kCaLMP) {
  HarnessConfig c;
  c.mode = mode;
  c.dram_bytes = 1 * util::MiB;
  c.nvram_bytes = 64 * util::MiB;
  c.backend = Backend::kSim;
  c.compute_efficiency = workload().compute_efficiency;
  c.conv_read_passes = workload().conv_read_passes;
  c.async_movement = async;
  Harness h(c);
  auto model = build_model(h.engine(), workload());
  Trainer t(h, *model);
  IterationMetrics m;
  for (int i = 0; i < 2; ++i) m = t.run_iteration();
  return m;
}

TEST(AsyncMovement, OverlapsPrefetchesWithExecution) {
  const auto sync = run(/*async=*/false);
  const auto async = run(/*async=*/true);
  // Same traffic, less wall time: the prefetch copies overlap.
  EXPECT_EQ(async.nvram.bytes_read, sync.nvram.bytes_read);
  EXPECT_LT(async.seconds, sync.seconds);
}

TEST(AsyncMovement, BoundedBelowByNoMovementProjection) {
  const auto sync = run(false);
  const auto async = run(true);
  // Async cannot beat the Fig. 7 projection (time minus all synchronous
  // movement of the sync run).
  const double projection = sync.seconds - sync.movement_seconds;
  EXPECT_GE(async.seconds, projection - 1e-9);
}

TEST(AsyncMovement, RealTrainingStillConverges) {
  ModelSpec spec = ModelSpec::vgg_tiny();
  spec.batch = 64;
  HarnessConfig c;
  c.mode = Mode::kCaLMP;
  c.dram_bytes = 192 * util::KiB;
  c.nvram_bytes = 32 * util::MiB;
  c.backend = Backend::kReal;
  c.async_movement = true;
  Harness h(c);
  auto& e = h.engine();
  auto model = build_model(e, spec);
  model->init(e, 5);
  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 8; ++it) {
    Tensor input = e.tensor(model->input_shape());
    e.fill_normal(input, 1.0f, 123);
    Tensor labels = e.tensor({spec.batch});
    e.fill_labels(labels, spec.classes, 321);
    const float loss = e.softmax_ce_loss(model->forward(e, input), labels);
    ASSERT_TRUE(std::isfinite(loss));
    if (it == 0) first = loss;
    last = loss;
    e.backward();
    e.sgd_step(0.05f);
    e.end_iteration();
  }
  EXPECT_LT(last, first * 0.8f);
}

TEST(AsyncMovement, DeterministicLikeEverythingElse) {
  const auto a = run(true);
  const auto b = run(true);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.nvram.bytes_read, b.nvram.bytes_read);
}

}  // namespace
}  // namespace ca::dnn
