// The strongest correctness property of a tiering runtime: data movement
// must be semantically invisible.  Training the same model with the same
// seeds under every operating mode -- different placements, different
// evictions, different prefetches, sync or async movement -- must produce
// bit-identical weights.
#include <gtest/gtest.h>

#include <vector>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

ModelSpec spec() {
  ModelSpec s = ModelSpec::resnet_tiny();
  s.batch = 16;  // enough pressure on the tiny DRAM tiers below
  return s;
}

/// Train 4 iterations under `mode` and return every parameter's bytes.
std::vector<float> train_and_dump(Mode mode, std::size_t dram,
                                  bool async = false) {
  HarnessConfig c;
  c.mode = mode;
  c.dram_bytes = dram;
  c.nvram_bytes = 64 * util::MiB;
  c.backend = Backend::kReal;
  c.min_migratable = 4 * util::KiB;
  c.async_movement = async;
  Harness h(c);
  auto& e = h.engine();
  auto model = build_model(e, spec());
  model->init(e, /*seed=*/11);
  for (int it = 0; it < 4; ++it) {
    Tensor input = e.tensor(model->input_shape(), "input");
    e.fill_normal(input, 1.0f, 100 + it);
    Tensor labels = e.tensor({spec().batch}, "labels");
    e.fill_labels(labels, spec().classes, 200 + it);
    e.softmax_ce_loss(model->forward(e, input), labels);
    e.backward();
    e.sgd_step(0.05f);
    e.end_iteration();
  }
  std::vector<float> dump;
  for (const auto& p : e.parameters()) {
    p.array().with_read([&](std::span<const float> s) {
      dump.insert(dump.end(), s.begin(), s.end());
    });
  }
  return dump;
}

TEST(CrossModeConsistency, EveryModeProducesIdenticalWeights) {
  // Reference: everything fits in DRAM, no movement at all.
  const auto reference = train_and_dump(Mode::kCaLM, 32 * util::MiB);
  ASSERT_FALSE(reference.empty());

  struct Case {
    const char* name;
    Mode mode;
    std::size_t dram;
    bool async;
  };
  const Case cases[] = {
      {"CaLM tiny DRAM (heavy eviction)", Mode::kCaLM, 256 * util::KiB,
       false},
      {"CaNone (true-cache emulation)", Mode::kCaNone, 256 * util::KiB,
       false},
      {"CaL (GC-reliant)", Mode::kCaL, 256 * util::KiB, false},
      {"CaLMP (prefetching)", Mode::kCaLMP, 256 * util::KiB, false},
      {"CaLMP async mover", Mode::kCaLMP, 256 * util::KiB, true},
      {"NVRAM only", Mode::kNvramOnly, 0, false},
      {"2LM: M", Mode::kTwoLmM, 256 * util::KiB, false},
  };
  for (const auto& c : cases) {
    const auto weights = train_and_dump(c.mode, c.dram, c.async);
    ASSERT_EQ(weights.size(), reference.size()) << c.name;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      ASSERT_EQ(weights[i], reference[i])
          << c.name << ": weight " << i << " diverged -- the memory system "
          << "leaked into the computation";
    }
  }
}

}  // namespace
}  // namespace ca::dnn
