#include <cmath>
// Integration tests: the full system (policy + data manager + GC emulation
// + kernels + trainer) run end-to-end in every operating mode of the
// paper, under real memory pressure, checking both correctness and the
// qualitative orderings §V reports.
#include <gtest/gtest.h>

#include "dnn/models.hpp"
#include "dnn/trainer.hpp"
#include "util/align.hpp"

namespace ca::dnn {
namespace {

/// A model big enough to pressure a small DRAM tier.
ModelSpec pressure_spec() {
  ModelSpec s;
  s.family = ModelSpec::Family::kVgg;
  s.name = "VGG pressure";
  s.stages = {4, 4};
  s.batch = 8;
  s.image = 16;
  s.classes = 10;
  s.base_channels = 16;
  s.compute_efficiency = 0.5;
  return s;
}

HarnessConfig sim_cfg(Mode mode, std::size_t dram = 1 * util::MiB) {
  HarnessConfig c;
  c.mode = mode;
  c.dram_bytes = dram;
  c.nvram_bytes = 64 * util::MiB;
  c.backend = Backend::kSim;
  c.compute_efficiency = pressure_spec().compute_efficiency;
  return c;
}

IterationMetrics run_mode(Mode mode, std::size_t dram = 1 * util::MiB,
                          int iterations = 2) {
  Harness h(sim_cfg(mode, dram));
  auto model = build_model(h.engine(), pressure_spec());
  model->init(h.engine(), 3);
  Trainer trainer(h, *model);
  IterationMetrics last;
  for (int i = 0; i < iterations; ++i) last = trainer.run_iteration();
  return last;  // steady-state iteration
}

class AllModes : public ::testing::TestWithParam<Mode> {};

TEST_P(AllModes, TrainsWithoutErrorUnderPressure) {
  const auto m = run_mode(GetParam());
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_GT(m.dram.total() + m.nvram.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllModes,
    ::testing::Values(Mode::kTwoLmNone, Mode::kTwoLmM, Mode::kCaNone,
                      Mode::kCaL, Mode::kCaLM, Mode::kCaLMP,
                      Mode::kNvramOnly),
    [](const ::testing::TestParamInfo<Mode>& info) {
      switch (info.param) {
        case Mode::kTwoLmNone: return "TwoLmNone";
        case Mode::kTwoLmM: return "TwoLmM";
        case Mode::kCaNone: return "CaNone";
        case Mode::kCaL: return "CaL";
        case Mode::kCaLM: return "CaLM";
        case Mode::kCaLMP: return "CaLMP";
        case Mode::kNvramOnly: return "NvramOnly";
      }
      return "Unknown";
    });

TEST(ModeOrdering, MemoryOptimizationReducesNvramWrites) {
  // The Fig. 5 mechanism: without M, dead intermediates get evicted to
  // NVRAM; with M they are freed before eviction ever happens.
  const auto l = run_mode(Mode::kCaL);
  const auto lm = run_mode(Mode::kCaLM);
  EXPECT_LT(lm.nvram.bytes_written, l.nvram.bytes_written);
}

TEST(ModeOrdering, LocalAllocationReducesInitialCopies) {
  // CA:0 births every object in NVRAM and faults it into DRAM before use
  // (a compulsory miss per object) -> far more explicit copies, more DRAM
  // fill writes, and a slower iteration than CA:L.
  const auto none = run_mode(Mode::kCaNone);
  const auto l = run_mode(Mode::kCaL);
  EXPECT_LT(l.dram.bytes_written, none.dram.bytes_written);
  EXPECT_LT(l.nvram.bytes_written, none.nvram.bytes_written);
  EXPECT_LT(l.seconds, none.seconds);
}

TEST(ModeOrdering, CaLmBeatsUnoptimizedTwoLm) {
  // The headline: CachedArrays with local allocation + memory
  // optimizations beats the hardware cache without them.
  const auto two_lm = run_mode(Mode::kTwoLmNone);
  const auto ca = run_mode(Mode::kCaLM);
  EXPECT_LT(ca.seconds, two_lm.seconds);
}

TEST(ModeOrdering, MemoryFreeingHelpsTwoLmToo) {
  // Fig. 2/4: eager freeing improves even the hardware cache (address
  // reuse -> higher hit rate, fewer dirty misses).
  const auto none = run_mode(Mode::kTwoLmNone);
  const auto m = run_mode(Mode::kTwoLmM);
  EXPECT_LE(m.seconds, none.seconds);
  EXPECT_GE(m.cache.hit_rate(), none.cache.hit_rate());
}

TEST(ModeOrdering, NvramOnlyIsMuchSlowerThanDramRich) {
  // Fig. 7: NVRAM-only execution is a multiple slower; generous DRAM
  // recovers the performance.
  const auto nvram_only = run_mode(Mode::kNvramOnly, /*dram=*/0);
  const auto dram_rich = run_mode(Mode::kCaLM, /*dram=*/32 * util::MiB);
  EXPECT_GT(nvram_only.seconds, 2.0 * dram_rich.seconds);
}

TEST(ModeOrdering, TwoLmSeesCacheTraffic) {
  const auto m = run_mode(Mode::kTwoLmNone);
  EXPECT_GT(m.cache.accesses, 0u);
  EXPECT_GT(m.cache.hit_rate(), 0.0);
  EXPECT_GT(m.nvram.bytes_read, 0u);  // miss fills
}

TEST(ModeOrdering, PrefetchMovesReadTrafficFromNvramToDram) {
  const auto lm = run_mode(Mode::kCaLM);
  const auto lmp = run_mode(Mode::kCaLMP);
  // Prefetching serves backward-pass reads from DRAM instead of NVRAM.
  EXPECT_LT(lmp.nvram.bytes_read, lm.nvram.bytes_read);
  EXPECT_GT(lmp.dram.bytes_read, lm.dram.bytes_read);
}

TEST(Integrity, TrainingConvergesUnderEvictionChurn) {
  // Real backend with a DRAM tier far smaller than the working set: every
  // iteration forces evictions, prefetches and writebacks.  If any byte is
  // lost in migration the loss will not fall.
  ModelSpec spec = ModelSpec::vgg_tiny();
  spec.batch = 64;  // activations are 64 KiB: migratable, and the working
                    // set is several times the DRAM tier below
  HarnessConfig c;
  c.mode = Mode::kCaLM;
  c.dram_bytes = 192 * util::KiB;  // pathologically small
  c.nvram_bytes = 32 * util::MiB;
  c.backend = Backend::kReal;
  Harness h(c);
  auto& e = h.engine();
  auto model = build_model(e, spec);
  model->init(e, 5);

  float first = 0.0f, last = 0.0f;
  for (int it = 0; it < 8; ++it) {
    Tensor input = e.tensor(model->input_shape());
    e.fill_normal(input, 1.0f, 123);
    Tensor labels = e.tensor({spec.batch});
    e.fill_labels(labels, spec.classes, 321);
    const float loss =
        e.softmax_ce_loss(model->forward(e, input), labels);
    ASSERT_TRUE(std::isfinite(loss));
    if (it == 0) first = loss;
    last = loss;
    e.backward();
    e.sgd_step(0.05f);
    e.end_iteration();
  }
  // Evictions actually happened...
  auto& lru = static_cast<policy::LruPolicy&>(h.runtime().policy());
  EXPECT_GT(lru.op_stats().evictions, 0u);
  // ...and training still converged.
  EXPECT_LT(last, first * 0.8f);
}

TEST(Integrity, ResultsAreDeterministic) {
  const auto a = run_mode(Mode::kCaLM);
  const auto b = run_mode(Mode::kCaLM);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.nvram.bytes_written, b.nvram.bytes_written);
  EXPECT_EQ(a.dram.bytes_read, b.dram.bytes_read);
}

TEST(Integrity, PeakResidentReflectsPressure) {
  const auto no_m = run_mode(Mode::kCaL);
  const auto with_m = run_mode(Mode::kCaLM);
  // Eager retire keeps the resident footprint smaller.
  EXPECT_LT(with_m.peak_resident_bytes, no_m.peak_resident_bytes);
}

}  // namespace
}  // namespace ca::dnn
