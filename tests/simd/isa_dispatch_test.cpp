// Runtime ISA dispatch: level parsing, clamping, tile shapes, and the
// consistency contract between max_supported_level() and the providers.
#include <gtest/gtest.h>

#include <cstddef>

#include "simd/copy.hpp"
#include "simd/gemm_kernel.hpp"
#include "simd/isa.hpp"

namespace ca::simd {
namespace {

// Every test that forces a level restores the entry level, so suite order
// never leaks a forced level into later suites in the same binary.
class IsaDispatchTest : public ::testing::Test {
 protected:
  void SetUp() override { entry_ = active_level(); }
  void TearDown() override { set_level(entry_); }

 private:
  IsaLevel entry_ = IsaLevel::kScalar;
};

TEST_F(IsaDispatchTest, LevelNamesRoundTripThroughParse) {
  for (const IsaLevel level :
       {IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    IsaLevel parsed = IsaLevel::kScalar;
    ASSERT_TRUE(parse_level(level_name(level), &parsed)) << level_name(level);
    EXPECT_EQ(parsed, level);
  }
}

TEST_F(IsaDispatchTest, ParseNativeResolvesToMaxSupported) {
  IsaLevel parsed = IsaLevel::kScalar;
  ASSERT_TRUE(parse_level("native", &parsed));
  EXPECT_EQ(parsed, max_supported_level());
}

TEST_F(IsaDispatchTest, ParseRejectsGarbageAndLeavesOutputUntouched) {
  IsaLevel parsed = IsaLevel::kAvx2;
  EXPECT_FALSE(parse_level("", &parsed));
  EXPECT_FALSE(parse_level("sse2", &parsed));
  EXPECT_FALSE(parse_level("AVX2", &parsed));  // spellings are lowercase
  EXPECT_FALSE(parse_level("avx1024", &parsed));
  EXPECT_FALSE(parse_level(nullptr, &parsed));
  EXPECT_EQ(parsed, IsaLevel::kAvx2);
}

TEST_F(IsaDispatchTest, SetLevelScalarAlwaysHonored) {
  EXPECT_TRUE(set_level(IsaLevel::kScalar));
  EXPECT_EQ(active_level(), IsaLevel::kScalar);
}

TEST_F(IsaDispatchTest, SetLevelClampsAboveMaxSupported) {
  const IsaLevel max = max_supported_level();
  if (max == IsaLevel::kAvx512) {
    GTEST_SKIP() << "host supports every level; nothing to clamp";
  }
  const IsaLevel above =
      max == IsaLevel::kScalar ? IsaLevel::kAvx2 : IsaLevel::kAvx512;
  EXPECT_FALSE(set_level(above));  // clamped => not honored exactly
  EXPECT_EQ(active_level(), max);
}

TEST_F(IsaDispatchTest, SetLevelAtOrBelowMaxIsExact) {
  for (int l = 0; l <= static_cast<int>(max_supported_level()); ++l) {
    const auto level = static_cast<IsaLevel>(l);
    EXPECT_TRUE(set_level(level)) << level_name(level);
    EXPECT_EQ(active_level(), level);
  }
}

TEST_F(IsaDispatchTest, GemmTileShapesMatchTheDesignDoc) {
  // DESIGN.md §3.4: scalar 4x8, AVX2 6x16, AVX-512 8x32.  Every tile must
  // divide the shared blocking (kMC=96 by mr, kNC=1024 by nr) so the pack
  // routines stay tile-agnostic.
  const GemmTile& scalar = gemm_tile(IsaLevel::kScalar);
  EXPECT_EQ(scalar.mr, 4u);
  EXPECT_EQ(scalar.nr, 8u);
  ASSERT_NE(scalar.kernel, nullptr);

  for (int l = 0; l <= static_cast<int>(max_supported_level()); ++l) {
    const GemmTile& tile = gemm_tile(static_cast<IsaLevel>(l));
    ASSERT_NE(tile.kernel, nullptr);
    EXPECT_EQ(96u % tile.mr, 0u);
    EXPECT_EQ(1024u % tile.nr, 0u);
    if (static_cast<IsaLevel>(l) == IsaLevel::kAvx2) {
      EXPECT_EQ(tile.mr, 6u);
      EXPECT_EQ(tile.nr, 16u);
    }
    if (static_cast<IsaLevel>(l) == IsaLevel::kAvx512) {
      EXPECT_EQ(tile.mr, 8u);
      EXPECT_EQ(tile.nr, 32u);
    }
  }
}

TEST_F(IsaDispatchTest, GemmTileAboveMaxFallsBackToAProvidedTile) {
  // Asking for a tile the binary/CPU cannot run must degrade, not crash.
  const GemmTile& tile = gemm_tile(IsaLevel::kAvx512);
  ASSERT_NE(tile.kernel, nullptr);
  const GemmTile& supported = gemm_tile(max_supported_level());
  EXPECT_EQ(tile.kernel, supported.kernel);
}

TEST_F(IsaDispatchTest, NtBytesModelMatchesTheGatingRules) {
  const std::size_t big = kNtThreshold;
  // Scalar never streams; vector levels stream exactly n at/above the
  // threshold under kWriteback, and nothing otherwise.
  EXPECT_EQ(nt_bytes_for(big, CopyHint::kWriteback, IsaLevel::kScalar), 0u);
  for (const IsaLevel level : {IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    // A level the host cannot run clamps to what it can; on a scalar-only
    // host every request models 0 streamed bytes.
    const std::size_t streams =
        max_supported_level() > IsaLevel::kScalar ? big : 0;
    EXPECT_EQ(nt_bytes_for(big, CopyHint::kWriteback, level), streams);
    if (streams != 0) {
      EXPECT_EQ(nt_bytes_for(big + 1, CopyHint::kWriteback, level), big + 1);
    }
    EXPECT_EQ(nt_bytes_for(big - 1, CopyHint::kWriteback, level), 0u);
    EXPECT_EQ(nt_bytes_for(big, CopyHint::kTemporal, level), 0u);
    EXPECT_EQ(nt_bytes_for(0, CopyHint::kWriteback, level), 0u);
  }
}

}  // namespace
}  // namespace ca::simd
