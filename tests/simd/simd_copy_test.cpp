// Byte-exactness and accounting for the dispatched copy/fill family.
//
// The NT kernels split every call into memcpy head / streamed body /
// memcpy tail, so the dangerous inputs are the ones that make those seams
// move: misaligned sources and destinations (independently), sizes just
// around the vector width, and sizes straddling kNtThreshold.  Every
// combination must produce bytes identical to memcpy/memset, never touch a
// byte outside [dst, dst+n), and report streamed bytes consistently with
// nt_store_bytes().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/copy.hpp"
#include "simd/isa.hpp"
#include "util/rng.hpp"

namespace ca::simd {
namespace {

constexpr unsigned char kGuard = 0xC7;

class SimdCopyTest : public ::testing::TestWithParam<IsaLevel> {
 protected:
  void SetUp() override {
    entry_ = active_level();
    if (GetParam() > max_supported_level()) {
      GTEST_SKIP() << "host does not support " << level_name(GetParam());
    }
    ASSERT_TRUE(set_level(GetParam()));
  }
  void TearDown() override { set_level(entry_); }

 private:
  IsaLevel entry_ = IsaLevel::kScalar;
};

// Exhaustive seam sweep: src offset x dst offset x size, with guard bytes
// on both sides of the destination window.
TEST_P(SimdCopyTest, CopyBytesExactAtEverySeam) {
  const std::size_t kPad = 128;
  const std::size_t sizes[] = {0,   1,   2,    31,   32,  33,
                               63,  64,  65,   127,  128, 129,
                               255, 256, 4095, 4096, 8191};
  const std::size_t offs[] = {0, 1, 7, 8, 31, 32, 33, 63};

  const std::size_t max_sz = 8191;
  std::vector<unsigned char> src(max_sz + kPad), dst(max_sz + 2 * kPad),
      ref(max_sz + 2 * kPad);
  ca::util::Xoshiro256 rng(42);
  for (auto& x : src) x = static_cast<unsigned char>(rng());

  for (const std::size_t sz : sizes) {
    for (const std::size_t soff : offs) {
      for (const std::size_t doff : offs) {
        std::fill(dst.begin(), dst.end(), kGuard);
        std::fill(ref.begin(), ref.end(), kGuard);
        const std::size_t nt = copy_bytes(dst.data() + kPad + doff,
                                          src.data() + soff, sz,
                                          CopyHint::kWriteback);
        std::memcpy(ref.data() + kPad + doff, src.data() + soff, sz);
        ASSERT_EQ(dst, ref) << "size=" << sz << " soff=" << soff
                            << " doff=" << doff;
        EXPECT_EQ(nt, 0u) << "sub-threshold sizes must stay temporal";
      }
    }
  }
}

TEST_P(SimdCopyTest, FillZeroExactAtEverySeam) {
  const std::size_t kPad = 128;
  const std::size_t sizes[] = {0, 1, 31, 32, 63, 64, 65, 255, 4096, 8191};
  const std::size_t offs[] = {0, 1, 7, 31, 32, 63};
  std::vector<unsigned char> dst(8191 + 2 * kPad), ref(8191 + 2 * kPad);
  for (const std::size_t sz : sizes) {
    for (const std::size_t doff : offs) {
      std::fill(dst.begin(), dst.end(), kGuard);
      std::fill(ref.begin(), ref.end(), kGuard);
      const std::size_t nt =
          fill_zero(dst.data() + kPad + doff, sz, CopyHint::kWriteback);
      std::memset(ref.data() + kPad + doff, 0, sz);
      ASSERT_EQ(dst, ref) << "size=" << sz << " doff=" << doff;
      EXPECT_EQ(nt, 0u);
    }
  }
}

// Above-threshold copies: exact bytes, and the returned streamed count
// matches the gating rules and accrues to the process-wide counter.
TEST_P(SimdCopyTest, AboveThresholdStreamsAndAccounts) {
  const std::size_t kPad = 128;
  const std::size_t sz = kNtThreshold + 12345;
  std::vector<unsigned char> src(sz + kPad), dst(sz + 2 * kPad),
      ref(sz + 2 * kPad);
  ca::util::Xoshiro256 rng(43);
  for (auto& x : src) x = static_cast<unsigned char>(rng());

  for (const std::size_t soff : {std::size_t{0}, std::size_t{3}}) {
    for (const std::size_t doff : {std::size_t{0}, std::size_t{61}}) {
      std::fill(dst.begin(), dst.end(), kGuard);
      std::fill(ref.begin(), ref.end(), kGuard);
      const std::uint64_t before = nt_store_bytes();
      const std::size_t nt = copy_bytes(dst.data() + kPad + doff,
                                        src.data() + soff, sz,
                                        CopyHint::kWriteback);
      std::memcpy(ref.data() + kPad + doff, src.data() + soff, sz);
      ASSERT_EQ(dst, ref) << "soff=" << soff << " doff=" << doff;
      EXPECT_EQ(nt_store_bytes() - before, nt);
      if (GetParam() == IsaLevel::kScalar) {
        EXPECT_EQ(nt, 0u);
      } else {
        // The streamed body skips at most an alignment head and a partial
        // tail; the bulk of the copy must actually stream.
        EXPECT_GT(nt, sz - 128);
        EXPECT_LE(nt, sz);
      }
    }
  }

  // Temporal hint never streams, whatever the size.
  const std::size_t nt =
      copy_bytes(dst.data() + kPad, src.data(), sz, CopyHint::kTemporal);
  EXPECT_EQ(nt, 0u);

  // And the fill twin.
  std::fill(dst.begin(), dst.end(), kGuard);
  std::fill(ref.begin(), ref.end(), kGuard);
  const std::size_t ntf =
      fill_zero(dst.data() + kPad + 5, sz, CopyHint::kWriteback);
  std::memset(ref.data() + kPad + 5, 0, sz);
  ASSERT_EQ(dst, ref);
  if (GetParam() == IsaLevel::kScalar) {
    EXPECT_EQ(ntf, 0u);
  } else {
    EXPECT_GT(ntf, sz - 128);
    EXPECT_LE(ntf, sz);
  }
}

// The deterministic model brackets reality: modeled-n engages exactly when
// the real call streams a nonzero count.
TEST_P(SimdCopyTest, ModelAgreesWithRealStreamingDecision) {
  const std::size_t sz = kNtThreshold + 777;
  std::vector<unsigned char> src(sz), dst(sz);
  ca::util::Xoshiro256 rng(44);
  for (auto& x : src) x = static_cast<unsigned char>(rng());

  const std::size_t modeled =
      nt_bytes_for(sz, CopyHint::kWriteback, active_level());
  const std::size_t real =
      copy_bytes(dst.data(), src.data(), sz, CopyHint::kWriteback);
  EXPECT_EQ(modeled != 0, real != 0);
  EXPECT_LE(real, modeled);
}

INSTANTIATE_TEST_SUITE_P(
    AllLevels, SimdCopyTest,
    ::testing::Values(IsaLevel::kScalar, IsaLevel::kAvx2, IsaLevel::kAvx512),
    [](const ::testing::TestParamInfo<IsaLevel>& info) {
      return level_name(info.param);
    });

}  // namespace
}  // namespace ca::simd
