// RaceTestPeer: reintroduces, behind a test-only friend, the two async-mover
// lifecycle bugs the DataManager's join discipline exists to prevent.  The
// hazard regression tests drive these through the schedule explorer and
// assert ca::race flags them; the same scenarios on the real (fixed) paths
// must come back clean.
#pragma once

#include <cstddef>
#include <functional>

#include "dm/data_manager.hpp"
#include "race/access.hpp"

namespace ca::dm {

struct RaceTestPeer {
  /// Hazard 1 -- "free while in flight": free a region WITHOUT joining the
  /// real copies that still read or write it (the bug `release_region`
  /// fixes by calling `sync_region_real` first).  The registry entries are
  /// scrubbed so the modeled state stays consistent; only the join is
  /// skipped.
  static void free_without_join(DataManager& dm, Region* region) {
    {
      sync::lock lock(dm.objects_mu_);
      if (region->parent() != nullptr) dm.detach(*region);
      region->releasing_ = true;
    }
    {
      sync::lock lock(dm.inflight_mu_);
      std::size_t kept = 0;
      for (auto& t : dm.inflight_) {
        if (t.dst == region || t.src == region) {
          dm.async_counters_.retired.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (&dm.inflight_[kept] != &t) dm.inflight_[kept] = std::move(t);
        ++kept;
      }
      dm.inflight_.resize(kept);
    }
    CA_RACE_FREE(region->data(), region->size(),
                 "RaceTestPeer::free_without_join");
    sync::lock lock(dm.objects_mu_);
    sync::lock heap_lock(dm.heap_mu_);
    auto& h = dm.heap(region->device());
    h.alloc->free(region->offset());
    dm.regions_.erase(region);
  }

  /// Hazard 3 -- "ABBA order inversion": exercise inflight_mu_ ->
  /// CopyEngine::mu_ and then CopyEngine::mu_ -> inflight_mu_ from a single
  /// thread.  Never deadlocks live (the two orders run sequentially), which
  /// is exactly the point: lockdep must prove the *potential* deadlock from
  /// the acquisition-order cycle alone, in every schedule.  The analysis
  /// suppression is deliberate -- this is the bug the annotations forbid.
  static void abba_inversion(DataManager& dm) CA_NO_THREAD_SAFETY_ANALYSIS {
    {
      sync::lock lock(dm.inflight_mu_);
      (void)dm.engine_.stats();  // inflight_mu_ -> mem::CopyEngine::mu_
    }
    {
      sync::lock lock(dm.engine_.mu_);
      // mem::CopyEngine::mu_ -> inflight_mu_: the cycle.  (async_stats() is
      // lock-free now; the registry snapshot still takes inflight_mu_.)
      (void)dm.inflight_transfers();
    }
  }

  /// Hazard 4 -- "join under the registry lock": hold inflight_mu_ across
  /// Transfer::join(), the discipline retire_transfers/sync_region_real
  /// exist to avoid (they pull handles out under the lock and join after
  /// releasing it).  Lockdep's held-across-blocking detector fires at the
  /// join() entry hook, before the real_done early-out, so the report is
  /// deterministic even when the mover already finished.
  static void join_while_locked(DataManager& dm)
      CA_NO_THREAD_SAFETY_ANALYSIS {
    sync::lock lock(dm.inflight_mu_);
    for (auto& t : dm.inflight_) t.transfer.join();
  }

  /// Hazard 5 -- "cross-tenant evict": run an evictfrom-style candidate
  /// scan WITHOUT the tenant-isolation check and hand the first victim on
  /// `dev` to the callback even when it belongs to another tenant -- the
  /// bug the `victim == requester` refusal in DataManager::evictfrom
  /// fixes.  The owner may be touching the region's bytes concurrently, so
  /// the callback's free is unordered with those accesses and the detector
  /// must flag it in every schedule.
  static bool evict_ignoring_tenant(
      DataManager& dm, sim::DeviceId dev,
      const std::function<bool(Region&)>& evict) {
    Region* victim = nullptr;
    {
      sync::lock heap_lock(dm.heap_mu_);
      auto& h = dm.heap(dev);
      h.alloc->for_blocks_from(
          0, [&](const mem::FreeListAllocator::BlockView& b) {
            if (!b.allocated) return true;
            victim = static_cast<Region*>(h.alloc->cookie(b.offset));
            return false;
          });
    }
    if (victim == nullptr) return false;
    return evict(*victim);  // no tenant check: the bug
  }

  /// Hazard 2 -- "retire before join": drop registry entries whose modeled
  /// completion has passed WITHOUT joining their real copies (the bug
  /// `retire_transfers` fixes by joining every retiree before returning).
  /// A region freed afterwards no longer finds the transfer in the
  /// registry, so its storage is reused while the mover may still touch it.
  static void retire_without_join(DataManager& dm) {
    const double now = dm.clock_.now();
    sync::lock lock(dm.inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : dm.inflight_) {
      if (t.transfer.done_time() <= now) {
        dm.async_counters_.retired.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (&dm.inflight_[kept] != &t) dm.inflight_[kept] = std::move(t);
      ++kept;
    }
    dm.inflight_.resize(kept);
  }
};

}  // namespace ca::dm
