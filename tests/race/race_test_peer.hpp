// RaceTestPeer: reintroduces, behind a test-only friend, the two async-mover
// lifecycle bugs the DataManager's join discipline exists to prevent.  The
// hazard regression tests drive these through the schedule explorer and
// assert ca::race flags them; the same scenarios on the real (fixed) paths
// must come back clean.
#pragma once

#include <cstddef>

#include "dm/data_manager.hpp"
#include "race/access.hpp"

namespace ca::dm {

struct RaceTestPeer {
  /// Hazard 1 -- "free while in flight": free a region WITHOUT joining the
  /// real copies that still read or write it (the bug `release_region`
  /// fixes by calling `sync_region_real` first).  The registry entries are
  /// scrubbed so the modeled state stays consistent; only the join is
  /// skipped.
  static void free_without_join(DataManager& dm, Region* region) {
    if (region->parent() != nullptr) dm.detach(*region);
    {
      sync::lock lock(dm.inflight_mu_);
      std::size_t kept = 0;
      for (auto& t : dm.inflight_) {
        if (t.dst == region || t.src == region) {
          ++dm.async_stats_.retired;
          continue;
        }
        if (&dm.inflight_[kept] != &t) dm.inflight_[kept] = std::move(t);
        ++kept;
      }
      dm.inflight_.resize(kept);
    }
    CA_RACE_FREE(region->data(), region->size(),
                 "RaceTestPeer::free_without_join");
    auto& h = dm.heap(region->device());
    h.alloc->free(region->offset());
    dm.regions_.erase(region);
  }

  /// Hazard 3 -- "ABBA order inversion": exercise inflight_mu_ ->
  /// CopyEngine::mu_ and then CopyEngine::mu_ -> inflight_mu_ from a single
  /// thread.  Never deadlocks live (the two orders run sequentially), which
  /// is exactly the point: lockdep must prove the *potential* deadlock from
  /// the acquisition-order cycle alone, in every schedule.  The analysis
  /// suppression is deliberate -- this is the bug the annotations forbid.
  static void abba_inversion(DataManager& dm) CA_NO_THREAD_SAFETY_ANALYSIS {
    {
      sync::lock lock(dm.inflight_mu_);
      (void)dm.engine_.stats();  // inflight_mu_ -> mem::CopyEngine::mu_
    }
    {
      sync::lock lock(dm.engine_.mu_);
      (void)dm.async_stats();  // mem::CopyEngine::mu_ -> inflight_mu_: cycle
    }
  }

  /// Hazard 4 -- "join under the registry lock": hold inflight_mu_ across
  /// Transfer::join(), the discipline retire_transfers/sync_region_real
  /// exist to avoid (they pull handles out under the lock and join after
  /// releasing it).  Lockdep's held-across-blocking detector fires at the
  /// join() entry hook, before the real_done early-out, so the report is
  /// deterministic even when the mover already finished.
  static void join_while_locked(DataManager& dm)
      CA_NO_THREAD_SAFETY_ANALYSIS {
    sync::lock lock(dm.inflight_mu_);
    for (auto& t : dm.inflight_) t.transfer.join();
  }

  /// Hazard 2 -- "retire before join": drop registry entries whose modeled
  /// completion has passed WITHOUT joining their real copies (the bug
  /// `retire_transfers` fixes by joining every retiree before returning).
  /// A region freed afterwards no longer finds the transfer in the
  /// registry, so its storage is reused while the mover may still touch it.
  static void retire_without_join(DataManager& dm) {
    const double now = dm.clock_.now();
    sync::lock lock(dm.inflight_mu_);
    std::size_t kept = 0;
    for (auto& t : dm.inflight_) {
      if (t.transfer.done_time() <= now) {
        ++dm.async_stats_.retired;
        continue;
      }
      if (&dm.inflight_[kept] != &t) dm.inflight_[kept] = std::move(t);
      ++kept;
    }
    dm.inflight_.resize(kept);
  }
};

}  // namespace ca::dm
