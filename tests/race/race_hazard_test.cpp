// Seeded-hazard regression tests: reintroduce, behind RaceTestPeer, the two
// async-mover lifecycle bugs the DataManager's join discipline prevents --
// free-while-in-flight and retire-before-join -- and assert the schedule
// explorer + vector-clock detector flag both, across >= 1000 distinct
// interleavings each.  The same scenarios on the real (fixed) code paths
// must come back clean, and any failing seed must replay deterministically.
#include <gtest/gtest.h>

#if !defined(CA_RACE)

TEST(RaceHazards, InstrumentationRequired) {
  GTEST_SKIP() << "CA_RACE instrumentation not compiled in; configure with "
                  "-DCA_RACE=ON to run the seeded-hazard scenarios";
}

#else  // CA_RACE

#include <cstdint>
#include <cstdio>
#include <string_view>

#include "dm/data_manager.hpp"
#include "race/explorer.hpp"
#include "race_test_peer.hpp"
#include "sim/platform.hpp"
#include "simd/copy.hpp"
#include "simd/isa.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

/// One worker per pool regardless of the host's core count, so the explored
/// task set (root + copy worker + mover worker) is the same everywhere.
sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

/// A few registry-lock round-trips while the mover is in flight: contested
/// schedule points that widen the interleaving space the explorer can reach.
void poke_registry(const dm::DataManager& dm) {
  for (int i = 0; i < 8; ++i) (void)dm.inflight_transfers();
}

/// Hazard 1 -- free while in flight.  The buggy path frees the transfer's
/// destination without joining the real copy: the mover's writes and the
/// free are unordered in every interleaving.
void free_while_inflight(bool buggy) {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);
  poke_registry(dm);
  if (buggy) {
    dm::RaceTestPeer::free_without_join(dm, dst);
  } else {
    dm.free(dst);  // joins the real copy before the storage is released
    dm.free(src);
  }
}

/// Hazard 2 -- retire before join.  The buggy path drops the registry entry
/// once the *modeled* clock has passed its completion, without joining the
/// *real* copy; the source is then freed while the mover may still read it.
void retire_before_join(bool buggy) {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  const double done = dm.copyto_async(*dst, *src);
  poke_registry(dm);
  clock.advance(done - clock.now() + 1e-9, sim::TimeCategory::kOther);
  if (buggy) {
    dm::RaceTestPeer::retire_without_join(dm);
  } else {
    dm.retire_transfers();  // joins every retiree before dropping it
  }
  dm.free(src);
}

/// Hazard 3 -- NT writeback vs free.  The same bug as hazard 1, but in the
/// writeback direction (fast -> slow) with the region sized so the mover's
/// chunk clears simd::kNtThreshold and the bytes go out as AVX2
/// non-temporal stores.  The race hooks fire in util::copy_bytes *before*
/// the dispatched kernel runs, so the detector's view of the mover's write
/// set must be identical no matter how the stores are issued -- streaming
/// must not open a blind spot.
void nt_writeback_free_while_inflight(bool buggy) {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  // 512 KiB: a single tail chunk (copy_chunk is 1 MiB) that still clears
  // the 256 KiB NT threshold.
  dm::Region* src = dm.allocate(sim::kFast, 512 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kSlow, 512 * util::KiB);
  dm.copyto_async(*dst, *src);
  poke_registry(dm);
  if (buggy) {
    dm::RaceTestPeer::free_without_join(dm, dst);
  } else {
    dm.free(dst);  // joins the real copy before the storage is released
    dm.free(src);
  }
}

TEST(RaceHazards, FreeWhileInflightIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  opts.schedules = 1100;
  opts.mix_strategies = false;
  opts.log_failures = false;  // 1100 expected failures; the seed-echo test
                              // below prints the greppable FAILURE lines
  const auto result = race::explore(opts, [] { free_while_inflight(true); });
  EXPECT_EQ(result.schedules_run, 1100u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  ASSERT_FALSE(result.failures.empty());
  bool saw_peer_free = false;
  for (const auto& report : result.failures.front().reports) {
    saw_peer_free = saw_peer_free ||
                    std::string_view(report.prior_label)
                            .find("free_without_join") != std::string_view::npos ||
                    std::string_view(report.current_label)
                            .find("free_without_join") != std::string_view::npos;
  }
  EXPECT_TRUE(saw_peer_free);
  std::fprintf(stderr,
               "ca::race: free-while-inflight flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(RaceHazards, RetireBeforeJoinIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  opts.schedules = 1100;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result = race::explore(opts, [] { retire_before_join(true); });
  EXPECT_EQ(result.schedules_run, 1100u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr,
               "ca::race: retire-before-join flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(RaceHazards, NtWritebackFreeWhileInflightIsFlaggedInEverySchedule) {
  if (simd::max_supported_level() < simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "host lacks AVX2: the NT store path cannot engage";
  }
  // Pin the level so the explored schedule set is identical on AVX2-only
  // and AVX-512 hosts.
  const simd::IsaLevel entry = simd::active_level();
  simd::set_level(simd::IsaLevel::kAvx2);
  const std::uint64_t nt_before = simd::nt_store_bytes();

  race::ExplorerOptions opts;
  opts.schedules = 1100;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result =
      race::explore(opts, [] { nt_writeback_free_while_inflight(true); });
  simd::set_level(entry);

  EXPECT_EQ(result.schedules_run, 1100u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  // Proof the streamed path is what ran: the mover's 512 KiB chunks
  // actually went out as NT stores while the detector still flagged them.
  EXPECT_GT(simd::nt_store_bytes(), nt_before);
  std::fprintf(stderr,
               "ca::race: nt-writeback free-while-inflight flagged in "
               "%zu/%zu schedules (%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(RaceHazards, NtWritebackFixedPathIsCleanAcrossSchedules) {
  if (simd::max_supported_level() < simd::IsaLevel::kAvx2) {
    GTEST_SKIP() << "host lacks AVX2: the NT store path cannot engage";
  }
  const simd::IsaLevel entry = simd::active_level();
  simd::set_level(simd::IsaLevel::kAvx2);
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result =
      race::explore(opts, [] { nt_writeback_free_while_inflight(false); });
  simd::set_level(entry);
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(RaceHazards, FixedFreePathIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, [] { free_while_inflight(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(RaceHazards, FixedRetirePathIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, [] { retire_before_join(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(RaceHazards, FailingSeedIsEchoedAndReplaysDeterministically) {
  race::ExplorerOptions opts;
  opts.schedules = 4;
  opts.stop_on_failure = true;
  opts.log_failures = true;  // the "ca::race: FAILURE seed=0x..." ctest echo
  const auto result = race::explore(opts, [] { free_while_inflight(true); });
  ASSERT_FALSE(result.failures.empty());
  const auto& failure = result.failures.front();

  // The printed seed reproduces the exact interleaving and the finding.
  const auto replayed =
      race::replay(failure.seed, failure.strategy,
                   [] { free_while_inflight(true); }, opts.pct_depth);
  EXPECT_EQ(replayed.schedule_hash, failure.schedule_hash);
  ASSERT_FALSE(replayed.reports.empty());
  EXPECT_EQ(replayed.reports.size(), failure.reports.size());
  EXPECT_STREQ(replayed.reports.front().prior_label,
               failure.reports.front().prior_label);
  EXPECT_STREQ(replayed.reports.front().current_label,
               failure.reports.front().current_label);
}

}  // namespace
}  // namespace ca

#endif  // CA_RACE
