// Unit tests for the ca::race vector-clock runtime: clock algebra,
// happens-before edges (sync objects, fork/join), and the shadow-memory
// conflict detector.  These run in every build -- the runtime library is
// always compiled; only the instrumentation hooks are CA_RACE-gated.
#include <gtest/gtest.h>

#include <functional>
#include <thread>

#include "race/runtime.hpp"
#include "race/vector_clock.hpp"

namespace ca::race {
namespace {

TEST(VectorClock, TickSetJoinLeq) {
  VectorClock a;
  EXPECT_EQ(a.at(0), 0u);
  a.tick(0);
  a.tick(0);
  a.tick(2);
  EXPECT_EQ(a.at(0), 2u);
  EXPECT_EQ(a.at(1), 0u);
  EXPECT_EQ(a.at(2), 1u);

  VectorClock b;
  b.set(1, 7);
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(b.leq(a));

  VectorClock joined = a;
  joined.join(b);
  EXPECT_EQ(joined.at(0), 2u);
  EXPECT_EQ(joined.at(1), 7u);
  EXPECT_EQ(joined.at(2), 1u);
  EXPECT_TRUE(a.leq(joined));
  EXPECT_TRUE(b.leq(joined));
}

/// Run `fn` on a fresh OS thread (fresh tid in the runtime) and wait for it.
/// Deliberately does NOT record a fork or join edge: the work is unordered
/// with the caller unless the test sets up edges itself.
void on_unordered_thread(const std::function<void()>& fn) {
  std::thread t(fn);
  t.join();
}

TEST(RaceRuntime, UnorderedWritesConflict) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kWrite,
                                             "writer-a"); });
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kWrite,
                                             "writer-b"); });
  EXPECT_EQ(rt.report_count(), 1u);
  const auto reports = rt.take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_STREQ(reports[0].prior_label, "writer-a");
  EXPECT_STREQ(reports[0].current_label, "writer-b");
  EXPECT_FALSE(reports[0].use_after_free);
}

TEST(RaceRuntime, ForkEdgeOrdersChildAfterParent) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  rt.record_access(&x, sizeof(x), AccessKind::kWrite, "parent");
  const std::uint64_t fork = rt.prepare_fork();
  on_unordered_thread([&] {
    rt.bind_fork(fork);
    rt.record_access(&x, sizeof(x), AccessKind::kWrite, "child");
  });
  EXPECT_EQ(rt.report_count(), 0u);
}

TEST(RaceRuntime, ReleaseAcquireOrdersAccesses) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  int sync_obj = 0;
  on_unordered_thread([&] {
    rt.record_access(&x, sizeof(x), AccessKind::kWrite, "producer");
    rt.release(&sync_obj);
  });
  on_unordered_thread([&] {
    rt.acquire(&sync_obj);
    rt.record_access(&x, sizeof(x), AccessKind::kWrite, "consumer");
  });
  EXPECT_EQ(rt.report_count(), 0u);
}

TEST(RaceRuntime, ConcurrentReadsDoNotConflict) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kRead,
                                             "reader-a"); });
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kRead,
                                             "reader-b"); });
  EXPECT_EQ(rt.report_count(), 0u);
}

TEST(RaceRuntime, UnorderedReadVsWriteConflict) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kRead,
                                             "reader"); });
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kWrite,
                                             "writer"); });
  EXPECT_EQ(rt.report_count(), 1u);
}

TEST(RaceRuntime, UseAfterFreeIsFlagged) {
  auto& rt = Runtime::instance();
  rt.reset();
  char buf[64];
  on_unordered_thread([&] { rt.record_access(buf, sizeof(buf),
                                             AccessKind::kFree, "freer"); });
  on_unordered_thread([&] { rt.record_access(buf + 8, 4, AccessKind::kRead,
                                             "late-reader"); });
  const auto reports = rt.take_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].use_after_free);
  EXPECT_EQ(reports[0].prior_kind, AccessKind::kFree);
}

TEST(RaceRuntime, OrderedFreeThenReuseIsClean) {
  auto& rt = Runtime::instance();
  rt.reset();
  char buf[64];
  int sync_obj = 0;
  on_unordered_thread([&] {
    rt.record_access(buf, sizeof(buf), AccessKind::kFree, "freer");
    rt.release(&sync_obj);
  });
  on_unordered_thread([&] {
    rt.acquire(&sync_obj);
    rt.record_access(buf, sizeof(buf), AccessKind::kAlloc, "realloc");
    rt.record_access(buf, 8, AccessKind::kWrite, "reuse");
  });
  EXPECT_EQ(rt.report_count(), 0u);
}

TEST(RaceRuntime, PartialOverlapIsDetected) {
  auto& rt = Runtime::instance();
  rt.reset();
  char buf[64];
  on_unordered_thread([&] { rt.record_access(buf, 32, AccessKind::kWrite,
                                             "low-half"); });
  on_unordered_thread([&] { rt.record_access(buf + 16, 32, AccessKind::kWrite,
                                             "straddler"); });
  EXPECT_EQ(rt.report_count(), 1u);
}

TEST(RaceRuntime, DisjointRangesDoNotConflict) {
  auto& rt = Runtime::instance();
  rt.reset();
  char buf[64];
  on_unordered_thread([&] { rt.record_access(buf, 32, AccessKind::kWrite,
                                             "low-half"); });
  on_unordered_thread([&] { rt.record_access(buf + 32, 32, AccessKind::kWrite,
                                             "high-half"); });
  EXPECT_EQ(rt.report_count(), 0u);
}

TEST(RaceRuntime, ResetClearsEverything) {
  auto& rt = Runtime::instance();
  rt.reset();
  int x = 0;
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kWrite,
                                             "a"); });
  rt.reset();
  on_unordered_thread([&] { rt.record_access(&x, sizeof(x), AccessKind::kWrite,
                                             "b"); });
  // The first write's shadow is gone: no conflict across the reset.
  EXPECT_EQ(rt.report_count(), 0u);
}

}  // namespace
}  // namespace ca::race
