// Seeded-hazard regression tests for the comm engine: reintroduce, behind
// CommTestPeer, the two allreduce lifecycle bugs the pin-and-join
// discipline prevents -- bucket-reuse-before-reduce-complete and
// free-while-on-wire -- and assert the schedule explorer + vector-clock
// detector flag both in EVERY schedule, across >= 1000 distinct
// interleavings each.  The same scenarios through the real (fixed) API
// must come back clean.
#include <gtest/gtest.h>

#if !defined(CA_RACE)

TEST(CommRaceHazards, InstrumentationRequired) {
  GTEST_SKIP() << "CA_RACE instrumentation not compiled in; configure with "
                  "-DCA_RACE=ON to run the seeded-hazard scenarios";
}

#else  // CA_RACE

#include <cstdio>
#include <vector>

#include "comm/comm_engine.hpp"
#include "comm_test_peer.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "race/explorer.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

/// One copy worker / one mover channel so the explored task set is the
/// same on every host.
sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

struct CommHarness {
  sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm;
  comm::CommEngine eng;

  CommHarness()
      : dm(platform, clock, counters),
        eng(comm::CommConfig{2, comm::LinkModel::ethernet_scaled(), 1, {}}) {}

  dm::Object* make_bucket(const char* name) {
    dm::Object* obj =
        dm.create_object(16 * util::KiB, name, {}, dm::ObjectClass::kGradient);
    dm::Region* r = dm.allocate(sim::kFast, 16 * util::KiB);
    EXPECT_NE(r, nullptr);
    dm.setprimary(*obj, *r);
    return obj;
  }

  std::vector<dm::PinnedSpan> parts(dm::Object& a, dm::Object& b) {
    std::vector<dm::PinnedSpan> out;
    out.push_back(dm.access(a, /*write=*/true));
    out.push_back(dm.access(b, /*write=*/true));
    return out;
  }

  /// A few engine-lock round-trips: contested schedule points that widen
  /// the interleaving space the explorer can reach.
  void poke() {
    for (int i = 0; i < 8; ++i) (void)eng.stats();
  }
};

/// Hazard 1 -- bucket reuse before reduce complete.  The buggy path packs
/// the next step's gradients into a bucket while its allreduce is still on
/// the wire, through the pointer the worker cached while packing (its pin
/// is still held -- the trainer's real shape): the pack's writes and the
/// wire task's reads/writes are unordered in every interleaving.  The
/// fixed path joins first -- the release/acquire handshake in
/// Reduction::join orders the reuse after the scatter.
void bucket_reuse(bool buggy) {
  CommHarness h;
  dm::Object* g0 = h.make_bucket("g0");
  dm::Object* g1 = h.make_bucket("g1");
  dm::PinnedSpan pack_span = h.dm.access(*g0, /*write=*/true);
  std::byte* pack_ptr = pack_span.data();
  const std::size_t pack_bytes = pack_span.size_bytes();
  comm::Reduction red = h.eng.allreduce_async(h.parts(*g0, *g1), 0.0);
  h.poke();
  if (!buggy) red.join();
  comm::CommTestPeer::reuse_bucket(pack_ptr, pack_bytes);
  h.eng.drain();
  pack_span.reset();
  h.dm.destroy_object(g0);
  h.dm.destroy_object(g1);
}

/// Hazard 2 -- free while on wire.  The buggy engine drops the pins at
/// submit (CommTestPeer::submit_unpinned); the bucket is then destroyed
/// mid-collective and nothing orders the free against the wire task.  The
/// real engine holds the spans until the reduced bytes have landed, so the
/// same destroy is safe after join.
void free_while_on_wire(bool buggy) {
  CommHarness h;
  dm::Object* g0 = h.make_bucket("g0");
  dm::Object* g1 = h.make_bucket("g1");
  if (buggy) {
    comm::Reduction red =
        comm::CommTestPeer::submit_unpinned(h.eng, h.parts(*g0, *g1), 0.0);
    h.poke();
    h.dm.destroy_object(g0);  // storage freed while the task is on the wire
    h.eng.drain();
    h.dm.destroy_object(g1);
  } else {
    comm::Reduction red = h.eng.allreduce_async(h.parts(*g0, *g1), 0.0);
    h.poke();
    red.join();  // pins dropped + handshake: the free is ordered
    h.dm.destroy_object(g0);
    h.dm.destroy_object(g1);
    h.eng.drain();
  }
}

TEST(CommRaceHazards, BucketReuseBeforeCompleteIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  opts.schedules = 1500;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result = race::explore(opts, [] { bucket_reuse(true); });
  EXPECT_EQ(result.schedules_run, 1500u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr,
               "ca::race: bucket-reuse-before-complete flagged in %zu/%zu "
               "schedules (%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(CommRaceHazards, FreeWhileOnWireIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  opts.schedules = 1500;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result = race::explore(opts, [] { free_while_on_wire(true); });
  EXPECT_EQ(result.schedules_run, 1500u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr,
               "ca::race: free-while-on-wire flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(CommRaceHazards, JoinedReusePathIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, [] { bucket_reuse(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(CommRaceHazards, PinnedWirePathIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, [] { free_while_on_wire(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

}  // namespace
}  // namespace ca

#endif  // CA_RACE
