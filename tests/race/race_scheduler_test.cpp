// Tests for the deterministic cooperative scheduler and the schedule
// explorer: seed-replay determinism, breadth of distinct interleavings,
// the modeled mutex / condition-variable / join primitives, and livelock
// detection plumbing.  These use the scheduler API directly (manual task
// adoption), so they run in every build; the instrumented-shim scenarios
// live in race_hazard_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "race/explorer.hpp"
#include "race/runtime.hpp"
#include "race/scheduler.hpp"

namespace ca::race {
namespace {

/// Spawn a thread as a controlled task of the active schedule.  The caller
/// must join it with `join_controlled` before its own task finishes.
std::thread spawn_controlled(const std::function<void()>& fn) {
  auto* sched = Scheduler::current();
  const std::uint64_t fork = Runtime::instance().prepare_fork();
  return std::thread([sched, fork, fn] {
    sched->adopt_current_thread();
    Runtime::instance().bind_fork(fork);
    fn();
    sched->task_finished();
  });
}

void join_controlled(std::thread& t) {
  Scheduler::current()->join_os_thread(t.get_id());
  t.join();
}

/// Three tasks, eight schedule points each: ~10^10 possible interleavings,
/// so distinct-schedule counting has room to breathe.
void counting_scenario() {
  auto* sched = Scheduler::current();
  const std::size_t mark = sched->adoption_mark();
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.push_back(spawn_controlled([sched] {
      for (int i = 0; i < 8; ++i) sched->yield_point();
    }));
  }
  sched->await_adoptions(mark + 3);
  for (auto& t : threads) join_controlled(t);
}

TEST(RaceScheduler, SameSeedReplaysSameSchedule) {
  for (const auto strategy :
       {Scheduler::Strategy::kRandomWalk, Scheduler::Strategy::kPct}) {
    Scheduler::Options opts;
    opts.seed = 0xDEADBEEF;
    opts.strategy = strategy;
    const auto first = Scheduler::run(opts, counting_scenario);
    const auto second = Scheduler::run(opts, counting_scenario);
    EXPECT_TRUE(first.completed);
    EXPECT_TRUE(second.completed);
    EXPECT_EQ(first.tasks, 4u);  // root + 3 workers
    EXPECT_EQ(first.schedule_hash, second.schedule_hash);
    EXPECT_EQ(first.steps, second.steps);
  }
}

TEST(RaceScheduler, DifferentSeedsExploreDifferentSchedules) {
  Scheduler::Options a;
  a.seed = 1;
  Scheduler::Options b;
  b.seed = 2;
  const auto ra = Scheduler::run(a, counting_scenario);
  const auto rb = Scheduler::run(b, counting_scenario);
  EXPECT_NE(ra.schedule_hash, rb.schedule_hash);
}

TEST(RaceScheduler, ExploresAtLeastAThousandDistinctSchedules) {
  ExplorerOptions opts;
  opts.schedules = 1100;
  opts.mix_strategies = false;  // pure random-walk: maximal diversity
  const auto result = explore(opts, counting_scenario);
  EXPECT_EQ(result.schedules_run, 1100u);
  EXPECT_EQ(result.failing_schedules, 0u);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr, "ca::race: explored %zu distinct schedules in %zu runs\n",
               result.distinct_schedules, result.schedules_run);
}

TEST(RaceScheduler, PctSchedulesCompleteAndDiverge) {
  ExplorerOptions opts;
  opts.base_seed = 0xABC;
  opts.schedules = 200;
  opts.mix_strategies = true;  // odd seeds run PCT
  const auto result = explore(opts, counting_scenario);
  EXPECT_EQ(result.schedules_run, 200u);
  EXPECT_EQ(result.failing_schedules, 0u);
  // PCT deliberately concentrates on few interleavings (d-1 switch points
  // over a small scenario collide often); the random-walk half of the mix
  // still keeps the sweep diverse.
  EXPECT_GE(result.distinct_schedules, 100u);
}

TEST(RaceScheduler, ModeledMutexGivesExclusionAcrossSchedules) {
  // Two tasks do read-modify-write bursts on shared state under the modeled
  // mutex; with exclusion the final count is exact in every interleaving.
  auto scenario = [] {
    auto* sched = Scheduler::current();
    int counter = 0;
    int lock_tag = 0;  // address used as the modeled mutex key
    const std::size_t mark = sched->adoption_mark();
    std::vector<std::thread> threads;
    threads.reserve(2);
    for (int t = 0; t < 2; ++t) {
      threads.push_back(spawn_controlled([sched, &counter, &lock_tag] {
        for (int i = 0; i < 10; ++i) {
          sched->mutex_lock(&lock_tag);
          const int old = counter;
          sched->yield_point();  // invite a preemption inside the section
          counter = old + 1;
          sched->mutex_unlock(&lock_tag);
        }
      }));
    }
    sched->await_adoptions(mark + 2);
    for (auto& t : threads) join_controlled(t);
    if (counter != 20) throw std::runtime_error("lost update under mutex");
  };
  ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = explore(opts, scenario);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(RaceScheduler, ModeledConditionVariableHandshakes) {
  auto scenario = [] {
    auto* sched = Scheduler::current();
    int m_tag = 0;
    int cv_tag = 0;
    bool flag = false;
    const std::size_t mark = sched->adoption_mark();
    std::thread waiter = spawn_controlled([&] {
      sched->mutex_lock(&m_tag);
      while (!flag) sched->cv_wait(&cv_tag, &m_tag);
      sched->mutex_unlock(&m_tag);
    });
    std::thread notifier = spawn_controlled([&] {
      sched->mutex_lock(&m_tag);
      flag = true;
      sched->mutex_unlock(&m_tag);
      sched->cv_notify(&cv_tag, /*all=*/false);
    });
    sched->await_adoptions(mark + 2);
    join_controlled(waiter);
    join_controlled(notifier);
  };
  ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = explore(opts, scenario);
  // Every schedule completes: no lost-wakeup deadlock in the model.
  EXPECT_EQ(result.failing_schedules, 0u);
  EXPECT_EQ(result.schedules_run, 300u);
}

TEST(RaceScheduler, ReplayReproducesScheduleHash) {
  ExplorerOptions opts;
  opts.schedules = 5;
  const auto result = explore(opts, counting_scenario);
  ASSERT_EQ(result.failing_schedules, 0u);

  // Replay an arbitrary seed from the sweep and check the hash matches a
  // direct run with the same options.
  Scheduler::Options sopts;
  sopts.seed = opts.base_seed + 3;
  sopts.strategy = Scheduler::Strategy::kPct;  // seed index 3 is odd -> PCT
  sopts.pct_depth = opts.pct_depth;
  const auto direct = Scheduler::run(sopts, counting_scenario);
  const auto replayed =
      replay(sopts.seed, sopts.strategy, counting_scenario, opts.pct_depth);
  EXPECT_EQ(direct.schedule_hash, replayed.schedule_hash);
}

}  // namespace
}  // namespace ca::race
