// CommTestPeer: reintroduces, behind a test-only friend, the two gradient
// allreduce lifecycle bugs the comm engine's pin-and-join discipline
// exists to prevent.  The hazard regression tests drive these through the
// schedule explorer and assert ca::race flags them; the same scenarios on
// the real (fixed) paths must come back clean.
#pragma once

#include <cstddef>
#include <vector>

#include "comm/comm_engine.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "race/access.hpp"
#include "race/sync.hpp"
#include "util/bytes.hpp"

namespace ca::comm {

class CommTestPeer {
 public:
  /// Hazard 1 -- "bucket reuse before reduce complete": write the next
  /// step's gradients into a bucket WITHOUT joining the reduction that is
  /// still on the wire (the bug dp::Trainer's join-before-unpack
  /// discipline prevents).  The worker still holds its packing pin (the
  /// span stays alive in the caller) and reuses the bucket through the
  /// byte pointer it cached while packing, so the only thing that could
  /// order the write after the wire task's accesses is the join handshake
  /// the buggy path skips.  (Going back through `access()`/`data()` here
  /// instead would take `objects_mu_` and the ptrprov registry lock after
  /// the task released them, gifting the detector an accidental
  /// lock-induced happens-before edge in most schedules.)
  static void reuse_bucket(std::byte* cached, std::size_t bytes) {
    std::vector<std::byte> next(bytes, std::byte{0x5a});
    util::copy_bytes(cached, next.data(), next.size(),
                     "CommTestPeer::reuse_bucket");
  }

  /// Hazard 2 -- "free while on wire": submit the real reduction with the
  /// pins DROPPED at submit time (raw pointers captured first), the buggy
  /// engine this API's span ownership makes impossible.  The caller can
  /// then destroy a bucket while the wire task still reads and writes its
  /// bytes; nothing orders the free against the task.  The modeled
  /// schedule is computed exactly like the real path, so only the pin
  /// discipline differs.
  static Reduction submit_unpinned(CommEngine& eng,
                                   std::vector<dm::PinnedSpan> parts,
                                   double earliest) {
    auto state = std::make_shared<Reduction::State>();
    state->bytes = parts.front().size_bytes();
    state->algo = eng.pick(state->bytes);
    std::vector<std::byte*> raw;
    raw.reserve(parts.size());
    for (dm::PinnedSpan& p : parts) raw.push_back(p.data());
    for (dm::PinnedSpan& p : parts) p.reset();  // the bug: pins gone
    {
      sync::lock lock(eng.mu_);
      const Interconnect::Timeline tl =
          eng.net_.schedule_allreduce(state->algo, state->bytes, earliest);
      state->start = tl.start;
      state->done = tl.done;
      state->steps = tl.steps;
    }
    eng.pool_.submit([state, raw] { reduce_raw(*state, raw); });
    return Reduction(state);
  }

 private:
  /// The real path's math over unpinned raw pointers (same canonical
  /// order, same copy_bytes funnels, so the detector's view of the access
  /// pattern matches reduce_now exactly -- minus the pins).
  static void reduce_raw(Reduction::State& state,
                         const std::vector<std::byte*>& raw) {
    const std::size_t bytes = state.bytes;
    const std::size_t n = bytes / sizeof(float);
    std::vector<float> acc(n);
    util::copy_bytes(acc.data(), raw[0], bytes,
                     "CommTestPeer::reduce_raw:gather");
    for (std::size_t w = 1; w < raw.size(); ++w) {
      const auto* src = reinterpret_cast<const float*>(raw[w]);
      CA_RACE_READ(src, bytes, "CommTestPeer::reduce_raw:sum");
      for (std::size_t i = 0; i < n; ++i) acc[i] += src[i];
    }
    for (std::byte* dst : raw) {
      util::copy_bytes(dst, acc.data(), bytes,
                       "CommTestPeer::reduce_raw:scatter");
    }
    {
      sync::lock lock(state.mu);
      state.real_done.store(true, std::memory_order_release);
    }
    state.cv.notify_all();
  }
};

}  // namespace ca::comm
