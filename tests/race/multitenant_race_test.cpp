// Multi-tenant DataManager under the schedule explorer: K tenants share
// one manager from their own threads, exercising the fine-grained lock
// domains (objects_mu_ / heap_mu_ / tenants_mu_ / inflight_mu_)
// concurrently.  The sanctioned paths must come back clean across
// hundreds of interleavings; two injected cross-tenant hazards -- an
// eviction that skips the tenant-isolation check and a defragment run
// concurrently with another tenant's data traffic -- must be flagged in
// EVERY explored schedule (>= 1000 distinct), and the fixed paths on the
// same shapes must stay clean.
#include <gtest/gtest.h>

#if !defined(CA_RACE)

TEST(MultitenantRace, InstrumentationRequired) {
  GTEST_SKIP() << "CA_RACE instrumentation not compiled in; configure with "
                  "-DCA_RACE=ON to run the multi-tenant race scenarios";
}

#else  // CA_RACE

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "audit/audit.hpp"
#include "dm/data_manager.hpp"
#include "race/access.hpp"
#include "race/explorer.hpp"
#include "race_test_peer.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

/// One worker per pool so the explored task set is host-independent
/// (matches tests/race/race_hazard_test.cpp).
sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

/// Touch `bytes` of `p` as instrumented writes, in a few strides so the
/// scheduler has preemption points inside the owner's data traffic.
void owner_writes(std::byte* p, std::size_t bytes, const char* label) {
  const std::size_t stride = bytes / 4;
  for (std::size_t off = 0; off < bytes; off += stride) {
    const std::size_t n = std::min(stride, bytes - off);
    CA_RACE_WRITE(p + off, n, label);
    std::memset(p + off, 0x5A, n);
  }
}

/// Sanctioned concurrency: two registered tenants run metadata + data
/// traffic against the shared manager from their own threads while the
/// root (default tenant) allocates, self-evicts and frees.  Disjoint
/// bytes, lock-protected tables, atomic accounting: no race to find.
void concurrent_tenants_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  const dm::TenantId t1 = dm.register_tenant("trainer-1");
  const dm::TenantId t2 = dm.register_tenant("trainer-2");

  const std::size_t mark = sync::adoption_mark();
  std::vector<std::thread> threads;
  std::vector<sync::spawn_token> tokens;
  for (const dm::TenantId t : {t1, t2}) {
    const sync::spawn_token token = sync::before_spawn();
    tokens.push_back(token);
    threads.emplace_back([&dm, t, token] {
      sync::task_scope scope(token);
      dm::Region* slow = dm.allocate(sim::kSlow, 64 * util::KiB, t);
      ASSERT_NE(slow, nullptr);
      owner_writes(slow->data(), slow->size(), "tenant-owner-write");
      dm::Region* fast = dm.allocate(sim::kFast, 64 * util::KiB, t);
      ASSERT_NE(fast, nullptr);
      dm.copyto(*fast, *slow);
      dm.free(fast);
      dm.free(slow);
    });
  }
  sync::await_adoptions(mark + 2);

  // The root tenant contends on the same lock domains: allocations, a
  // self-only eviction pass over the fast tier, accounting reads.
  dm::Region* mine = dm.allocate(sim::kFast, 64 * util::KiB);
  ASSERT_NE(mine, nullptr);
  (void)dm.evictfrom(
      sim::kFast, 0, 64 * util::KiB,
      [&](dm::Region& r) {
        dm.free(&r);
        mine = nullptr;
        return true;
      },
      dm::TenantId{});
  if (mine != nullptr) dm.free(mine);
  (void)dm.tenant_stats(t1);
  (void)dm.async_stats();

  for (std::size_t i = 0; i < threads.size(); ++i) {
    sync::join_thread(threads[i], tokens[i]);
  }

  // Books balance once everyone is done.
  for (const dm::TenantId t : {dm::TenantId{}, t1, t2}) {
    const auto stats = dm.tenant_stats(t);
    for (const std::size_t resident : stats.resident) {
      ASSERT_EQ(resident, 0u);
    }
  }
  dm.check_invariants();
  const auto report = audit::verify(dm);
  ASSERT_TRUE(report.ok()) << report.to_string();
}

/// Cross-tenant eviction shape: tenant B's thread writes its region's
/// bytes while tenant A (the root) tries to reclaim B's device window.
/// Buggy: RaceTestPeer::evict_ignoring_tenant hands B's region to the
/// callback, whose free is unordered with B's writes.  Fixed: the real
/// evictfrom refuses the foreign victim without invoking the callback.
void cross_tenant_evict(bool buggy) {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  const dm::TenantId owner = dm.register_tenant("owner");
  dm::Region* region = dm.allocate(sim::kFast, 64 * util::KiB, owner);
  ASSERT_NE(region, nullptr);
  std::byte* data = region->data();
  const std::size_t size = region->size();

  const std::size_t mark = sync::adoption_mark();
  const sync::spawn_token token = sync::before_spawn();
  std::thread owner_thread([data, size, token] {
    sync::task_scope scope(token);
    owner_writes(data, size, "cross_tenant_evict::owner");
  });
  sync::await_adoptions(mark + 1);

  bool freed = false;
  const auto free_victim = [&](dm::Region& r) {
    dm.free(&r);
    freed = true;
    return true;
  };
  if (buggy) {
    ASSERT_TRUE(
        dm::RaceTestPeer::evict_ignoring_tenant(dm, sim::kFast, free_victim));
  } else {
    // Requester is the default tenant: B's block is refused untouched and
    // the window past it is free, so the call still succeeds.
    ASSERT_TRUE(dm.evictfrom(sim::kFast, 0, 64 * util::KiB, free_victim,
                             dm::TenantId{}));
    ASSERT_FALSE(freed);
  }

  sync::join_thread(owner_thread, token);
  if (!freed) dm.free(region);
}

/// Cross-tenant defragment shape: tenant B's thread writes its region's
/// bytes on the fast tier.  Buggy: the root compacts that device
/// mid-traffic (a hole below B's region forces a memmove), violating
/// defragment's step-boundary contract -- the compaction's moves are
/// unordered with B's writes.  Fixed: the root defragments only after B's
/// traffic has been joined.
void cross_tenant_defragment(bool buggy) {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  const dm::TenantId owner = dm.register_tenant("owner");
  // A hole below the owner's region so compaction must move its bytes.
  dm::Region* hole = dm.allocate(sim::kFast, 64 * util::KiB);
  ASSERT_NE(hole, nullptr);
  dm::Region* region = dm.allocate(sim::kFast, 64 * util::KiB, owner);
  ASSERT_NE(region, nullptr);
  dm.free(hole);
  std::byte* data = region->data();
  const std::size_t size = region->size();

  const std::size_t mark = sync::adoption_mark();
  const sync::spawn_token token = sync::before_spawn();
  std::thread owner_thread([data, size, token] {
    sync::task_scope scope(token);
    owner_writes(data, size, "cross_tenant_defragment::owner");
  });
  sync::await_adoptions(mark + 1);

  if (buggy) {
    dm.defragment(sim::kFast);  // concurrent with B's writes: the bug
    sync::join_thread(owner_thread, token);
  } else {
    sync::join_thread(owner_thread, token);  // step boundary first
    dm.defragment(sim::kFast);
  }
  dm.free(region);
}

TEST(MultitenantRace, ConcurrentTenantsAreCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, concurrent_tenants_scenario);
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(MultitenantRace, CrossTenantEvictIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  // These scenarios have fewer preemption points than the mover hazards,
  // so a wider seed sweep is needed to clear 1000 distinct interleavings.
  opts.schedules = 1500;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result = race::explore(opts, [] { cross_tenant_evict(true); });
  EXPECT_EQ(result.schedules_run, 1500u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr,
               "ca::race: cross-tenant evict flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(MultitenantRace, TenantIsolatedEvictIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result = race::explore(opts, [] { cross_tenant_evict(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

TEST(MultitenantRace, CrossTenantDefragmentIsFlaggedInEverySchedule) {
  race::ExplorerOptions opts;
  // See CrossTenantEvictIsFlaggedInEverySchedule on the sweep width.
  opts.schedules = 1500;
  opts.mix_strategies = false;
  opts.log_failures = false;
  const auto result =
      race::explore(opts, [] { cross_tenant_defragment(true); });
  EXPECT_EQ(result.schedules_run, 1500u);
  EXPECT_EQ(result.failing_schedules, result.schedules_run);
  EXPECT_GE(result.distinct_schedules, 1000u);
  std::fprintf(stderr,
               "ca::race: cross-tenant defragment flagged in %zu/%zu "
               "schedules (%zu distinct)\n",
               result.failing_schedules, result.schedules_run,
               result.distinct_schedules);
}

TEST(MultitenantRace, StepBoundaryDefragmentIsCleanAcrossSchedules) {
  race::ExplorerOptions opts;
  opts.schedules = 300;
  const auto result =
      race::explore(opts, [] { cross_tenant_defragment(false); });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
}

}  // namespace
}  // namespace ca

#endif  // CA_RACE
