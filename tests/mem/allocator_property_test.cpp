// Property-based tests: random allocate/free interleavings must preserve
// the allocator's structural invariants, never hand out overlapping blocks,
// and return all memory once everything is freed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "mem/freelist_allocator.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

namespace ca::mem {
namespace {

struct PropertyParam {
  std::uint64_t seed;
  FreeListAllocator::Fit fit;
  std::size_t max_alloc;
};

class AllocatorProperty : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(AllocatorProperty, RandomWorkloadPreservesInvariants) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  FreeListAllocator a(256 * util::KiB, 64, param.fit);

  // offset -> size of live allocations, mirrored outside the allocator.
  std::map<std::size_t, std::size_t> live;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.uniform() < 0.55;
    if (do_alloc) {
      const std::size_t size = 1 + rng.bounded(param.max_alloc);
      const auto off = a.allocate(size);
      if (off.has_value()) {
        const std::size_t rounded = util::align_up(size, 64);
        // No overlap with any existing live allocation.
        for (const auto& [o, s] : live) {
          const bool disjoint = *off + rounded <= o || o + s <= *off;
          ASSERT_TRUE(disjoint) << "overlapping blocks at step " << step;
        }
        live.emplace(*off, rounded);
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.bounded(live.size())));
      a.free(it->first);
      live.erase(it);
    }
    if (step % 200 == 0) a.check_invariants();
  }
  a.check_invariants();

  // Free everything: the heap must return to a single free block.
  for (const auto& [off, size] : live) a.free(off);
  a.check_invariants();
  EXPECT_EQ(a.blocks().size(), 1u);
  EXPECT_EQ(a.stats().free_bytes, a.capacity());
  EXPECT_EQ(a.stats().allocated_blocks, 0u);
}

TEST_P(AllocatorProperty, AllocationsNeverExceedCapacity) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed ^ 0xDEADBEEF);
  FreeListAllocator a(64 * util::KiB, 64, param.fit);
  std::vector<std::size_t> offs;
  std::size_t requested = 0;
  for (int i = 0; i < 500; ++i) {
    const std::size_t size = 1 + rng.bounded(param.max_alloc);
    if (const auto off = a.allocate(size)) {
      offs.push_back(*off);
      requested += util::align_up(size, 64);
    }
  }
  EXPECT_EQ(a.stats().allocated_bytes, requested);
  EXPECT_LE(a.stats().allocated_bytes, a.capacity());
  for (const auto off : offs) a.free(off);
  EXPECT_EQ(a.stats().allocated_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, AllocatorProperty,
    ::testing::Values(
        PropertyParam{1, FreeListAllocator::Fit::kFirstFit, 512},
        PropertyParam{2, FreeListAllocator::Fit::kFirstFit, 8192},
        PropertyParam{3, FreeListAllocator::Fit::kFirstFit, 64 * 1024},
        PropertyParam{4, FreeListAllocator::Fit::kBestFit, 512},
        PropertyParam{5, FreeListAllocator::Fit::kBestFit, 8192},
        PropertyParam{6, FreeListAllocator::Fit::kBestFit, 64 * 1024},
        PropertyParam{7, FreeListAllocator::Fit::kFirstFit, 100},
        PropertyParam{8, FreeListAllocator::Fit::kBestFit, 100}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      const auto& p = info.param;
      return std::string(p.fit == FreeListAllocator::Fit::kFirstFit
                             ? "FirstFit"
                             : "BestFit") +
             "_max" + std::to_string(p.max_alloc) + "_seed" +
             std::to_string(p.seed);
    });

}  // namespace
}  // namespace ca::mem
