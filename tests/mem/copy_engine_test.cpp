#include "mem/copy_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "simd/copy.hpp"
#include "simd/isa.hpp"
#include "util/align.hpp"

namespace ca::mem {
namespace {

class CopyEngineTest : public ::testing::Test {
 protected:
  CopyEngineTest()
      : platform_(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                     32 * util::MiB)),
        engine_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  CopyEngine engine_;
};

TEST_F(CopyEngineTest, CopiesBytesFaithfully) {
  std::vector<std::byte> src(5 * util::MiB);
  std::vector<std::byte> dst(5 * util::MiB);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 31 + 7);
  }
  engine_.copy(dst.data(), sim::kSlow, src.data(), sim::kFast, src.size());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST_F(CopyEngineTest, ChargesMovementTime) {
  std::vector<std::byte> buf(1 * util::MiB);
  std::vector<std::byte> out(1 * util::MiB);
  engine_.copy(out.data(), sim::kSlow, buf.data(), sim::kFast, buf.size());
  EXPECT_GT(clock_.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock_.spent(sim::TimeCategory::kMovement), clock_.now());
}

TEST_F(CopyEngineTest, RecordsTrafficOnBothDevices) {
  std::vector<std::byte> buf(256 * util::KiB);
  std::vector<std::byte> out(256 * util::KiB);
  engine_.copy(out.data(), sim::kSlow, buf.data(), sim::kFast, buf.size());
  EXPECT_EQ(counters_.device(sim::kFast).bytes_read, buf.size());
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, buf.size());
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, 0u);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read, 0u);
}

TEST_F(CopyEngineTest, ZeroByteCopyIsFree) {
  std::byte a{}, b{};
  engine_.copy(&a, sim::kFast, &b, sim::kFast, 0);
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);
  EXPECT_EQ(counters_.device(sim::kFast).total(), 0u);
}

TEST_F(CopyEngineTest, ThreadsScaleWithTransferSize) {
  EXPECT_EQ(engine_.threads_for(1), 1u);
  EXPECT_EQ(engine_.threads_for(platform_.copy_chunk), 1u);
  EXPECT_EQ(engine_.threads_for(2 * platform_.copy_chunk), 2u);
  EXPECT_EQ(engine_.threads_for(100 * platform_.copy_chunk),
            platform_.copy_threads);
}

TEST_F(CopyEngineTest, WritesToNvramSlowerThanReadsFromIt) {
  const std::size_t n = 16 * util::MiB;
  const double to_nvram =
      engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double from_nvram =
      engine_.modeled_copy_time(n, sim::kSlow, sim::kFast, true);
  EXPECT_GT(to_nvram, from_nvram);
}

TEST_F(CopyEngineTest, NonTemporalStoresSpeedUpNvramWrites) {
  const std::size_t n = 16 * util::MiB;
  const double nt = engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double regular =
      engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, false);
  EXPECT_GT(regular, 1.5 * nt);
}

TEST_F(CopyEngineTest, LargeTransfersAchieveHigherBandwidth) {
  // Traffic shaping: one large copy beats many small ones (per-op latency
  // amortization + more parallel workers).
  const std::size_t total = 32 * util::MiB;
  const double one_big =
      engine_.modeled_copy_time(total, sim::kFast, sim::kSlow, true);
  const std::size_t small = 64 * util::KiB;
  const double many_small =
      static_cast<double>(total / small) *
      engine_.modeled_copy_time(small, sim::kFast, sim::kSlow, true);
  EXPECT_GT(many_small, one_big);
}

TEST_F(CopyEngineTest, DramToDramIsFastest) {
  const std::size_t n = 8 * util::MiB;
  const double dd = engine_.modeled_copy_time(n, sim::kFast, sim::kFast, true);
  const double dn = engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double nd = engine_.modeled_copy_time(n, sim::kSlow, sim::kFast, true);
  EXPECT_LT(dd, dn);
  EXPECT_LT(dd, nd);
}

TEST_F(CopyEngineTest, FillZeroWritesAndCharges) {
  std::vector<std::byte> buf(64 * util::KiB, std::byte{0xFF});
  engine_.fill_zero(buf.data(), sim::kFast, buf.size());
  for (const auto b : buf) EXPECT_EQ(std::to_integer<int>(b), 0);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, buf.size());
  EXPECT_GT(clock_.now(), 0.0);
}

TEST_F(CopyEngineTest, StatsTrackTransfers) {
  std::vector<std::byte> a(256 * util::KiB);
  std::vector<std::byte> b(256 * util::KiB);
  engine_.copy(b.data(), sim::kSlow, a.data(), sim::kFast, a.size());
  engine_.copy(a.data(), sim::kFast, b.data(), sim::kSlow, a.size());
  const auto& s = engine_.stats();
  EXPECT_EQ(s.copies, 2u);
  EXPECT_EQ(s.bytes, 2 * a.size());
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.latency_seconds, 0.0);
  EXPECT_LT(s.latency_seconds, s.seconds);
  EXPECT_DOUBLE_EQ(s.seconds, clock_.spent(sim::TimeCategory::kMovement));
}

TEST_F(CopyEngineTest, ZeroByteCopyDoesNotCountAsTransfer) {
  std::byte a{}, b{};
  engine_.copy(&a, sim::kFast, &b, sim::kFast, 0);
  EXPECT_EQ(engine_.stats().copies, 0u);
}

TEST_F(CopyEngineTest, ModeledBandwidthIsMinOfEndpoints) {
  const std::size_t n = 64 * util::MiB;  // saturating thread count
  const std::size_t t = engine_.threads_for(n);
  const double bw = engine_.modeled_bandwidth(n, sim::kFast, sim::kSlow, true);
  const double src_bw = platform_.spec(sim::kFast).read_bw.at(t);
  const double dst_bw = platform_.spec(sim::kSlow).write_bw_nt.at(t);
  EXPECT_DOUBLE_EQ(bw, std::min(src_bw, dst_bw));
}

TEST_F(CopyEngineTest, FillZeroCountsFillsNotCopies) {
  std::vector<std::byte> buf(3 * util::MiB, std::byte{0xFF});
  engine_.fill_zero(buf.data(), sim::kFast, buf.size());
  const auto& s = engine_.stats();
  EXPECT_EQ(s.fills, 1u);
  EXPECT_EQ(s.fill_bytes, buf.size());
  EXPECT_EQ(s.copies, 0u);
  for (std::size_t i = 0; i < buf.size(); i += 4099) {
    ASSERT_EQ(std::to_integer<unsigned>(buf[i]), 0u) << "at " << i;
  }
}

TEST_F(CopyEngineTest, AsyncCopyMovesBytesAfterJoin) {
  std::vector<std::byte> src(4 * util::MiB);
  std::vector<std::byte> dst(4 * util::MiB);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 13 + 5);
  }
  Transfer t = engine_.copy_async(dst.data(), sim::kFast, src.data(),
                                  sim::kSlow, src.size(), 0.0);
  ASSERT_TRUE(t.valid());
  t.join();
  EXPECT_TRUE(t.real_done());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
  // Scheduling never advanced the clock; the modeled completion matches the
  // bandwidth model.
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);
  EXPECT_DOUBLE_EQ(
      t.done_time() - t.start_time(),
      engine_.modeled_copy_time(src.size(), sim::kSlow, sim::kFast, true));
}

TEST_F(CopyEngineTest, AsyncStatsAndTrafficRecordedAtScheduleTime) {
  std::vector<std::byte> src(1 * util::MiB);
  std::vector<std::byte> dst(1 * util::MiB);
  engine_.copy_async(dst.data(), sim::kFast, src.data(), sim::kSlow,
                     src.size(), 0.0);
  const auto& s = engine_.stats();
  EXPECT_EQ(s.async_copies, 1u);
  EXPECT_EQ(s.async_bytes, src.size());
  EXPECT_GT(s.async_seconds, 0.0);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read, src.size());
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, src.size());
  engine_.drain();
}

TEST_F(CopyEngineTest, ChannelsSplitBetweenDirections) {
  // Default platform: 4 channels, half per direction.
  EXPECT_EQ(engine_.channel_count(), 4u);
  EXPECT_EQ(engine_.channels_for(sim::kSlow, sim::kFast), 2u);  // fetch
  EXPECT_EQ(engine_.channels_for(sim::kFast, sim::kSlow), 2u);  // writeback
}

TEST_F(CopyEngineTest, MoverHorizonTracksLatestChannel) {
  std::vector<std::byte> src(2 * util::MiB);
  std::vector<std::byte> d1(2 * util::MiB), d2(2 * util::MiB),
      d3(2 * util::MiB);
  const Transfer t1 = engine_.copy_async(d1.data(), sim::kFast, src.data(),
                                         sim::kSlow, src.size(), 0.0);
  const Transfer t2 = engine_.copy_async(d2.data(), sim::kFast, src.data(),
                                         sim::kSlow, src.size(), 0.0);
  // Two fetch channels: both run concurrently in the model.
  EXPECT_DOUBLE_EQ(t1.done_time(), t2.done_time());
  EXPECT_NE(t1.channel(), t2.channel());
  // A third fetch queues behind the earliest channel.
  const Transfer t3 = engine_.copy_async(d3.data(), sim::kFast, src.data(),
                                         sim::kSlow, src.size(), 0.0);
  EXPECT_GT(t3.done_time(), t1.done_time());
  EXPECT_DOUBLE_EQ(engine_.mover_horizon(), t3.done_time());
  EXPECT_DOUBLE_EQ(engine_.channel_busy_until(t3.channel()), t3.done_time());
  engine_.drain();
  EXPECT_EQ(engine_.inflight(), 0u);
}

// --- NT-store accounting -------------------------------------------------
//
// The engine charges write_bw_nt in the model and now also *earns* it on
// the real path: writeback-direction copies stream their full 1 MiB chunks
// through the NT kernels, and the per-device counters record the modeled
// streamed bytes deterministically (same value at every dispatch level that
// has NT kernels, zero at CA_ISA=scalar).

/// Modeled NT bytes for `n` at the engine's chunking and current level:
/// what counters_.bytes_written_nt / Stats::nt_bytes must report.
std::uint64_t expected_nt(const sim::Platform& p, std::size_t n) {
  const std::size_t full = n / p.copy_chunk;
  const std::size_t tail = n % p.copy_chunk;
  const simd::IsaLevel level = simd::active_level();
  return full * simd::nt_bytes_for(p.copy_chunk, simd::CopyHint::kWriteback,
                                   level) +
         simd::nt_bytes_for(tail, simd::CopyHint::kWriteback, level);
}

TEST_F(CopyEngineTest, WritebackCopyRecordsNtBytesPerDevice) {
  const std::size_t n = 5 * util::MiB;  // five full 1 MiB chunks
  std::vector<std::byte> src(n), dst(n);
  engine_.copy(dst.data(), sim::kSlow, src.data(), sim::kFast, n);

  const std::uint64_t want = expected_nt(platform_, n);
  if (simd::active_level() > simd::IsaLevel::kScalar) {
    ASSERT_EQ(want, n) << "1 MiB chunks clear kNtThreshold";
  } else {
    ASSERT_EQ(want, 0u);
  }
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, want);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, n);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written_nt, 0u);
  EXPECT_EQ(engine_.stats().nt_bytes, want);
}

TEST_F(CopyEngineTest, FetchDirectionNeverStreams) {
  // slow -> fast: the destination is about to be read (that is why it was
  // fetched), so the lines belong in cache.
  const std::size_t n = 5 * util::MiB;
  std::vector<std::byte> src(n), dst(n);
  engine_.copy(dst.data(), sim::kFast, src.data(), sim::kSlow, n);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written_nt, 0u);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, 0u);
  EXPECT_EQ(engine_.stats().nt_bytes, 0u);
}

TEST_F(CopyEngineTest, TemporalWritebackOptOutNeverStreams) {
  const std::size_t n = 5 * util::MiB;
  std::vector<std::byte> src(n), dst(n);
  engine_.copy(dst.data(), sim::kSlow, src.data(), sim::kFast, n,
               /*non_temporal=*/false);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, 0u);
  EXPECT_EQ(engine_.stats().nt_bytes, 0u);
}

TEST_F(CopyEngineTest, SubThresholdWritebackStaysTemporal) {
  // 100 KiB is one tail chunk below kNtThreshold: correct bytes, no NT.
  const std::size_t n = 100 * util::KiB;
  ASSERT_LT(n, simd::kNtThreshold);
  std::vector<std::byte> src(n), dst(n);
  engine_.copy(dst.data(), sim::kSlow, src.data(), sim::kFast, n);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, n);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, 0u);
  EXPECT_EQ(engine_.stats().nt_bytes, 0u);
}

TEST_F(CopyEngineTest, AsyncWritebackRecordsNtAtScheduleTime) {
  const std::size_t n = 4 * util::MiB;
  std::vector<std::byte> src(n), dst(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = static_cast<std::byte>(i * 31 + 7);
  }
  Transfer t = engine_.copy_async(dst.data(), sim::kSlow, src.data(),
                                  sim::kFast, n, 0.0);
  const std::uint64_t want = expected_nt(platform_, n);
  // Deterministic accounting happens at schedule time (the mover thread
  // never touches the single-writer counters).
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, want);
  EXPECT_EQ(engine_.stats().nt_bytes, want);
  t.join();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), n), 0);
}

TEST_F(CopyEngineTest, FillZeroStreamsAsWriteback) {
  // fill_zero's destination is cold storage being prepared, not data about
  // to be read: it always takes the writeback hint.
  const std::size_t n = 3 * util::MiB;
  std::vector<std::byte> buf(n, std::byte{0xFF});
  engine_.fill_zero(buf.data(), sim::kSlow, n);
  for (const auto b : buf) ASSERT_EQ(std::to_integer<int>(b), 0);
  const std::uint64_t want = expected_nt(platform_, n);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written_nt, want);
  EXPECT_EQ(engine_.stats().nt_bytes, want);
}

TEST_F(CopyEngineTest, EarliestStartDefersModeledTransfer) {
  std::vector<std::byte> src(1 * util::MiB);
  std::vector<std::byte> dst(1 * util::MiB);
  const double defer = 123.5;
  const Transfer t = engine_.copy_async(dst.data(), sim::kFast, src.data(),
                                        sim::kSlow, src.size(), defer);
  EXPECT_DOUBLE_EQ(t.start_time(), defer);
  engine_.drain();
}

}  // namespace
}  // namespace ca::mem
