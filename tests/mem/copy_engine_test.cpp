#include "mem/copy_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "util/align.hpp"

namespace ca::mem {
namespace {

class CopyEngineTest : public ::testing::Test {
 protected:
  CopyEngineTest()
      : platform_(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                     32 * util::MiB)),
        engine_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  CopyEngine engine_;
};

TEST_F(CopyEngineTest, CopiesBytesFaithfully) {
  std::vector<std::byte> src(5 * util::MiB);
  std::vector<std::byte> dst(5 * util::MiB);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 31 + 7);
  }
  engine_.copy(dst.data(), sim::kSlow, src.data(), sim::kFast, src.size());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST_F(CopyEngineTest, ChargesMovementTime) {
  std::vector<std::byte> buf(1 * util::MiB);
  std::vector<std::byte> out(1 * util::MiB);
  engine_.copy(out.data(), sim::kSlow, buf.data(), sim::kFast, buf.size());
  EXPECT_GT(clock_.now(), 0.0);
  EXPECT_DOUBLE_EQ(clock_.spent(sim::TimeCategory::kMovement), clock_.now());
}

TEST_F(CopyEngineTest, RecordsTrafficOnBothDevices) {
  std::vector<std::byte> buf(256 * util::KiB);
  std::vector<std::byte> out(256 * util::KiB);
  engine_.copy(out.data(), sim::kSlow, buf.data(), sim::kFast, buf.size());
  EXPECT_EQ(counters_.device(sim::kFast).bytes_read, buf.size());
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, buf.size());
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, 0u);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read, 0u);
}

TEST_F(CopyEngineTest, ZeroByteCopyIsFree) {
  std::byte a{}, b{};
  engine_.copy(&a, sim::kFast, &b, sim::kFast, 0);
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);
  EXPECT_EQ(counters_.device(sim::kFast).total(), 0u);
}

TEST_F(CopyEngineTest, ThreadsScaleWithTransferSize) {
  EXPECT_EQ(engine_.threads_for(1), 1u);
  EXPECT_EQ(engine_.threads_for(platform_.copy_chunk), 1u);
  EXPECT_EQ(engine_.threads_for(2 * platform_.copy_chunk), 2u);
  EXPECT_EQ(engine_.threads_for(100 * platform_.copy_chunk),
            platform_.copy_threads);
}

TEST_F(CopyEngineTest, WritesToNvramSlowerThanReadsFromIt) {
  const std::size_t n = 16 * util::MiB;
  const double to_nvram =
      engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double from_nvram =
      engine_.modeled_copy_time(n, sim::kSlow, sim::kFast, true);
  EXPECT_GT(to_nvram, from_nvram);
}

TEST_F(CopyEngineTest, NonTemporalStoresSpeedUpNvramWrites) {
  const std::size_t n = 16 * util::MiB;
  const double nt = engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double regular =
      engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, false);
  EXPECT_GT(regular, 1.5 * nt);
}

TEST_F(CopyEngineTest, LargeTransfersAchieveHigherBandwidth) {
  // Traffic shaping: one large copy beats many small ones (per-op latency
  // amortization + more parallel workers).
  const std::size_t total = 32 * util::MiB;
  const double one_big =
      engine_.modeled_copy_time(total, sim::kFast, sim::kSlow, true);
  const std::size_t small = 64 * util::KiB;
  const double many_small =
      static_cast<double>(total / small) *
      engine_.modeled_copy_time(small, sim::kFast, sim::kSlow, true);
  EXPECT_GT(many_small, one_big);
}

TEST_F(CopyEngineTest, DramToDramIsFastest) {
  const std::size_t n = 8 * util::MiB;
  const double dd = engine_.modeled_copy_time(n, sim::kFast, sim::kFast, true);
  const double dn = engine_.modeled_copy_time(n, sim::kFast, sim::kSlow, true);
  const double nd = engine_.modeled_copy_time(n, sim::kSlow, sim::kFast, true);
  EXPECT_LT(dd, dn);
  EXPECT_LT(dd, nd);
}

TEST_F(CopyEngineTest, FillZeroWritesAndCharges) {
  std::vector<std::byte> buf(64 * util::KiB, std::byte{0xFF});
  engine_.fill_zero(buf.data(), sim::kFast, buf.size());
  for (const auto b : buf) EXPECT_EQ(std::to_integer<int>(b), 0);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, buf.size());
  EXPECT_GT(clock_.now(), 0.0);
}

TEST_F(CopyEngineTest, StatsTrackTransfers) {
  std::vector<std::byte> a(256 * util::KiB);
  std::vector<std::byte> b(256 * util::KiB);
  engine_.copy(b.data(), sim::kSlow, a.data(), sim::kFast, a.size());
  engine_.copy(a.data(), sim::kFast, b.data(), sim::kSlow, a.size());
  const auto& s = engine_.stats();
  EXPECT_EQ(s.copies, 2u);
  EXPECT_EQ(s.bytes, 2 * a.size());
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.latency_seconds, 0.0);
  EXPECT_LT(s.latency_seconds, s.seconds);
  EXPECT_DOUBLE_EQ(s.seconds, clock_.spent(sim::TimeCategory::kMovement));
}

TEST_F(CopyEngineTest, ZeroByteCopyDoesNotCountAsTransfer) {
  std::byte a{}, b{};
  engine_.copy(&a, sim::kFast, &b, sim::kFast, 0);
  EXPECT_EQ(engine_.stats().copies, 0u);
}

TEST_F(CopyEngineTest, ModeledBandwidthIsMinOfEndpoints) {
  const std::size_t n = 64 * util::MiB;  // saturating thread count
  const std::size_t t = engine_.threads_for(n);
  const double bw = engine_.modeled_bandwidth(n, sim::kFast, sim::kSlow, true);
  const double src_bw = platform_.spec(sim::kFast).read_bw.at(t);
  const double dst_bw = platform_.spec(sim::kSlow).write_bw_nt.at(t);
  EXPECT_DOUBLE_EQ(bw, std::min(src_bw, dst_bw));
}

}  // namespace
}  // namespace ca::mem
