// Differential fuzz: the binned FreeListAllocator must reproduce the
// reference (map-based) allocator's behaviour bit for bit.  Both allocators
// consume the same seeded op stream; every returned offset is compared on
// the spot, and the full block tiling, stats and free index are reconciled
// periodically.  Placement parity is what makes the binned allocator a
// drop-in: fig3_heap_occupancy and every policy decision that keys off
// block addresses must not move.
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "mem/freelist_allocator.hpp"
#include "mem/reference_allocator.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

namespace {

using ca::mem::FreeListAllocator;
using ca::mem::ReferenceAllocator;

constexpr std::size_t kHeap = 16 * ca::util::MiB;
constexpr std::size_t kMaxRequest = 64 * ca::util::KiB;

// A deterministic cookie derived from the block offset, so cookie parity
// can be checked without real pointers.
void* cookie_for(std::size_t offset) {
  return reinterpret_cast<void*>(offset * 2 + 1);
}

void expect_same_tiling(const FreeListAllocator& neu,
                        const ReferenceAllocator& ref, std::uint64_t step) {
  const auto nb = neu.blocks();
  const auto rb = ref.blocks();
  ASSERT_EQ(nb.size(), rb.size()) << "block count diverged at step " << step;
  for (std::size_t i = 0; i < nb.size(); ++i) {
    ASSERT_EQ(nb[i].offset, rb[i].offset) << "at step " << step;
    ASSERT_EQ(nb[i].size, rb[i].size) << "at step " << step;
    ASSERT_EQ(nb[i].allocated, rb[i].allocated) << "at step " << step;
    ASSERT_EQ(nb[i].cookie, rb[i].cookie) << "at step " << step;
  }
  ASSERT_EQ(neu.free_index_snapshot(), ref.free_index_snapshot())
      << "free index diverged at step " << step;

  const auto ns = neu.stats();
  const auto rs = ref.stats();
  ASSERT_EQ(ns.capacity, rs.capacity);
  ASSERT_EQ(ns.allocated_bytes, rs.allocated_bytes) << "at step " << step;
  ASSERT_EQ(ns.free_bytes, rs.free_bytes) << "at step " << step;
  ASSERT_EQ(ns.largest_free_block, rs.largest_free_block)
      << "at step " << step;
  ASSERT_EQ(ns.allocated_blocks, rs.allocated_blocks) << "at step " << step;
  ASSERT_EQ(ns.free_blocks, rs.free_blocks) << "at step " << step;
  ASSERT_EQ(ns.total_allocs, rs.total_allocs) << "at step " << step;
  ASSERT_EQ(ns.total_frees, rs.total_frees) << "at step " << step;
  ASSERT_EQ(ns.failed_allocs, rs.failed_allocs) << "at step " << step;
}

void run_differential(FreeListAllocator::Fit nfit, ReferenceAllocator::Fit rfit,
                      std::uint64_t seed, std::uint64_t steps) {
  FreeListAllocator neu(kHeap, 64, nfit);
  ReferenceAllocator ref(kHeap, 64, rfit);
  ca::util::Xoshiro256 rng(seed);
  std::vector<std::size_t> live;

  for (std::uint64_t step = 0; step < steps; ++step) {
    const std::uint64_t roll = rng.bounded(100);
    if (roll < 55 || live.empty()) {
      // Allocate.  Mostly DNN-plausible sizes, with occasional zero-size
      // and absurd requests to exercise the failure edges.
      std::size_t size;
      const std::uint64_t kind = rng.bounded(100);
      if (kind < 2) {
        size = 0;
      } else if (kind < 4) {
        size = ~std::size_t{0} - rng.bounded(64);
      } else if (kind < 8) {
        size = kHeap / 2 + rng.bounded(kHeap);
      } else {
        size = 1 + rng.bounded(kMaxRequest);
      }
      const std::optional<std::size_t> no = neu.allocate(size);
      const std::optional<std::size_t> ro = ref.allocate(size);
      ASSERT_EQ(no, ro) << "placement diverged at step " << step
                        << " (size " << size << ")";
      if (no) {
        live.push_back(*no);
        if (rng.bounded(2) == 0) {
          neu.set_cookie(*no, cookie_for(*no));
          ref.set_cookie(*no, cookie_for(*no));
        }
      }
    } else if (roll < 95) {
      const std::size_t pick = rng.bounded(live.size());
      const std::size_t off = live[pick];
      ASSERT_TRUE(neu.is_allocated(off));
      ASSERT_EQ(neu.block_size(off), ref.block_size(off));
      ASSERT_EQ(neu.cookie(off), ref.cookie(off));
      neu.free(off);
      ref.free(off);
      ASSERT_FALSE(neu.is_allocated(off));
      live[pick] = live.back();
      live.pop_back();
    } else {
      // Probe queries at a random position.
      const std::size_t from = rng.bounded(kHeap + 64);
      ASSERT_EQ(neu.first_allocated_from(from),
                ref.first_allocated_from(from))
          << "at step " << step;
    }

    if ((step & 1023) == 0) {
      neu.check_invariants();
      ref.check_invariants();
      expect_same_tiling(neu, ref, step);
    }
  }
  neu.check_invariants();
  ref.check_invariants();
  expect_same_tiling(neu, ref, steps);
}

std::uint64_t fuzz_steps() {
  // 100k ops per fit policy by default (the acceptance bar); CA_FUZZ_STEPS
  // can dial it down for quick local runs.
  if (const char* env = std::getenv("CA_FUZZ_STEPS")) {
    return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return 100000;
}

TEST(AllocatorDifferential, FirstFitMatchesReference) {
  run_differential(FreeListAllocator::Fit::kFirstFit,
                   ReferenceAllocator::Fit::kFirstFit, 0x5eed0001,
                   fuzz_steps());
}

TEST(AllocatorDifferential, BestFitMatchesReference) {
  run_differential(FreeListAllocator::Fit::kBestFit,
                   ReferenceAllocator::Fit::kBestFit, 0x5eed0002,
                   fuzz_steps());
}

TEST(AllocatorDifferential, TinyHeapHighChurn) {
  // A small heap forces constant splits, coalesces and failures.
  FreeListAllocator neu(4096, 64, FreeListAllocator::Fit::kFirstFit);
  ReferenceAllocator ref(4096, 64, ReferenceAllocator::Fit::kFirstFit);
  ca::util::Xoshiro256 rng(7);
  std::vector<std::size_t> live;
  for (int step = 0; step < 20000; ++step) {
    if (rng.bounded(2) == 0 || live.empty()) {
      const std::size_t size = 1 + rng.bounded(1024);
      const auto no = neu.allocate(size);
      const auto ro = ref.allocate(size);
      ASSERT_EQ(no, ro) << "at step " << step;
      if (no) live.push_back(*no);
    } else {
      const std::size_t pick = rng.bounded(live.size());
      neu.free(live[pick]);
      ref.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    neu.check_invariants();
  }
  expect_same_tiling(neu, ref, 20000);
}

}  // namespace
