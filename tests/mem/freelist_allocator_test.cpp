#include "mem/freelist_allocator.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::mem {
namespace {

constexpr std::size_t kCap = 64 * util::KiB;

TEST(FreeList, FreshHeapIsOneFreeBlock) {
  FreeListAllocator a(kCap);
  const auto blocks = a.blocks();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_FALSE(blocks[0].allocated);
  EXPECT_EQ(blocks[0].size, kCap);
  EXPECT_EQ(a.stats().free_bytes, kCap);
}

TEST(FreeList, AllocateReturnsAlignedOffsets) {
  FreeListAllocator a(kCap, 64);
  for (int i = 0; i < 10; ++i) {
    const auto off = a.allocate(100);
    ASSERT_TRUE(off.has_value());
    EXPECT_TRUE(util::is_aligned(*off, 64));
  }
}

TEST(FreeList, SizesRoundUpToAlignment) {
  FreeListAllocator a(kCap, 64);
  const auto off = a.allocate(1);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(a.block_size(*off), 64u);
}

TEST(FreeList, ZeroSizeAllocationGetsMinimumBlock) {
  FreeListAllocator a(kCap, 64);
  const auto off = a.allocate(0);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(a.block_size(*off), 64u);
}

TEST(FreeList, FirstFitPlacesAtLowestAddress) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  ASSERT_TRUE(x && y);
  EXPECT_EQ(*x, 0u);
  EXPECT_EQ(*y, 1024u);
  a.free(*x);
  // First-fit reuses the freed low block.
  const auto z = a.allocate(512);
  ASSERT_TRUE(z);
  EXPECT_EQ(*z, 0u);
}

TEST(FreeList, ExhaustionReturnsNullopt) {
  FreeListAllocator a(kCap);
  const auto big = a.allocate(kCap);
  ASSERT_TRUE(big.has_value());
  EXPECT_FALSE(a.allocate(64).has_value());
  EXPECT_EQ(a.stats().failed_allocs, 1u);
}

TEST(FreeList, OversizedRequestFails) {
  FreeListAllocator a(kCap);
  EXPECT_FALSE(a.allocate(kCap + 1).has_value());
}

TEST(FreeList, FreeCoalescesWithNext) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  ASSERT_TRUE(x && y);
  a.free(*y);  // y merges with trailing free space
  a.free(*x);  // x merges with the rest -> single free block
  EXPECT_EQ(a.blocks().size(), 1u);
  a.check_invariants();
}

TEST(FreeList, FreeCoalescesWithPrev) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  const auto z = a.allocate(1024);
  ASSERT_TRUE(x && y && z);
  a.free(*x);
  a.free(*y);  // merges with freed x
  const auto blocks = a.blocks();
  // [free 2048][z][free rest]
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_FALSE(blocks[0].allocated);
  EXPECT_EQ(blocks[0].size, 2048u);
  a.check_invariants();
}

TEST(FreeList, FreeCoalescesBothSides) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  const auto z = a.allocate(1024);
  ASSERT_TRUE(x && y && z);
  a.free(*x);
  a.free(*z);  // z merges with trailing free space
  a.free(*y);  // y bridges both sides -> one free block
  EXPECT_EQ(a.blocks().size(), 1u);
  a.check_invariants();
}

TEST(FreeList, DoubleFreeThrows) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(64);
  ASSERT_TRUE(x);
  a.free(*x);
  EXPECT_THROW(a.free(*x), InternalError);
}

TEST(FreeList, FreeOfBogusOffsetThrows) {
  FreeListAllocator a(kCap);
  EXPECT_THROW(a.free(12345), InternalError);
}

TEST(FreeList, CookieRoundTrip) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(64);
  ASSERT_TRUE(x);
  int marker = 0;
  a.set_cookie(*x, &marker);
  EXPECT_EQ(a.cookie(*x), &marker);
  a.free(*x);
  EXPECT_THROW(a.cookie(*x), InternalError);
}

TEST(FreeList, StatsTrackAllocationActivity) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(2048);
  ASSERT_TRUE(x && y);
  auto s = a.stats();
  EXPECT_EQ(s.allocated_bytes, 3072u);
  EXPECT_EQ(s.allocated_blocks, 2u);
  EXPECT_EQ(s.total_allocs, 2u);
  a.free(*x);
  s = a.stats();
  EXPECT_EQ(s.allocated_bytes, 2048u);
  EXPECT_EQ(s.total_frees, 1u);
}

TEST(FreeList, FragmentationMetric) {
  FreeListAllocator a(kCap);
  // Allocate everything in 1 KiB pieces, then free alternating pieces:
  // the largest free block stays 1 KiB while total free is half the heap.
  std::vector<std::size_t> offs;
  while (auto off = a.allocate(1024)) offs.push_back(*off);
  for (std::size_t i = 0; i < offs.size(); i += 2) a.free(offs[i]);
  const auto s = a.stats();
  EXPECT_EQ(s.largest_free_block, 1024u);
  EXPECT_GT(s.fragmentation(), 0.9);
  a.check_invariants();
}

TEST(FreeList, BestFitPicksTightestHole) {
  FreeListAllocator a(kCap, 64, FreeListAllocator::Fit::kBestFit);
  const auto a1 = a.allocate(4096);
  const auto a2 = a.allocate(64);
  const auto a3 = a.allocate(1024);
  const auto a4 = a.allocate(64);
  ASSERT_TRUE(a1 && a2 && a3 && a4);
  a.free(*a1);  // 4 KiB hole at offset 0
  a.free(*a3);  // 1 KiB hole in the middle
  const auto fit = a.allocate(1024);
  ASSERT_TRUE(fit);
  EXPECT_EQ(*fit, *a3);  // chose the 1 KiB hole, not the 4 KiB one
  a.check_invariants();
}

TEST(FreeList, ForBlocksFromStartsAtContainingBlock) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  ASSERT_TRUE(x && y);
  std::vector<std::size_t> seen;
  a.for_blocks_from(512, [&](const FreeListAllocator::BlockView& b) {
    seen.push_back(b.offset);
    return true;
  });
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen[0], 0u);  // block containing offset 512
  EXPECT_EQ(seen[1], 1024u);
}

TEST(FreeList, ForBlocksFromCanStopEarly) {
  FreeListAllocator a(kCap);
  (void)a.allocate(1024);
  (void)a.allocate(1024);
  int count = 0;
  a.for_blocks_from(0, [&](const FreeListAllocator::BlockView&) {
    ++count;
    return count < 1;
  });
  EXPECT_EQ(count, 1);
}

TEST(FreeList, FirstAllocatedFrom) {
  FreeListAllocator a(kCap);
  const auto x = a.allocate(1024);
  const auto y = a.allocate(1024);
  ASSERT_TRUE(x && y);
  a.free(*x);
  EXPECT_EQ(a.first_allocated_from(0), *y);
  EXPECT_EQ(a.first_allocated_from(*y), *y);
  EXPECT_EQ(a.first_allocated_from(*y + 1024), std::nullopt);
}

TEST(FreeList, CapacityRoundsDownToAlignment) {
  FreeListAllocator a(1000, 64);
  EXPECT_EQ(a.capacity(), 960u);
}

TEST(FreeList, ReusePatternKeepsHeapTight) {
  FreeListAllocator a(kCap);
  for (int round = 0; round < 100; ++round) {
    const auto x = a.allocate(4096);
    ASSERT_TRUE(x);
    EXPECT_EQ(*x, 0u);  // perfect reuse: no creep
    a.free(*x);
  }
  EXPECT_EQ(a.blocks().size(), 1u);
}

TEST(FreeList, NearMaxRequestFailsInsteadOfWrapping) {
  // Regression: align_up(SIZE_MAX - k, 64) wrapped to a tiny size, so the
  // allocator carved a zero-byte block at an existing offset and corrupted
  // both the block map and the free index.
  FreeListAllocator a(kCap);
  const auto max = std::numeric_limits<std::size_t>::max();
  EXPECT_EQ(a.allocate(max), std::nullopt);
  EXPECT_EQ(a.allocate(max - 1), std::nullopt);
  EXPECT_EQ(a.allocate(max - 63), std::nullopt);
  EXPECT_EQ(a.allocate(kCap + 1), std::nullopt);
  a.check_invariants();
  EXPECT_EQ(a.stats().failed_allocs, 4u);
  // The heap is still fully usable afterwards.
  const auto x = a.allocate(kCap);
  ASSERT_TRUE(x.has_value());
  a.free(*x);
  a.check_invariants();
}

}  // namespace
}  // namespace ca::mem
