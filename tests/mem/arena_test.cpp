#include "mem/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::mem {
namespace {

TEST(Arena, BasicProperties) {
  Arena a(1 * util::MiB);
  EXPECT_EQ(a.size(), 1 * util::MiB);
  EXPECT_NE(a.base(), nullptr);
  EXPECT_TRUE(util::is_aligned(a.base(), 4096));
}

TEST(Arena, PrefaultZeroes) {
  Arena a(64 * util::KiB);
  for (std::size_t i = 0; i < a.size(); i += 4096) {
    EXPECT_EQ(std::to_integer<int>(*a.at(i)), 0);
  }
}

TEST(Arena, AtReturnsOffsets) {
  Arena a(64 * util::KiB);
  EXPECT_EQ(a.at(0), a.base());
  EXPECT_EQ(a.at(100), a.base() + 100);
}

TEST(Arena, AtOutOfRangeThrows) {
  Arena a(4096);
  EXPECT_THROW(a.at(4096), InternalError);
  EXPECT_THROW(a.at(1 << 20), InternalError);
}

TEST(Arena, Contains) {
  Arena a(4096);
  EXPECT_TRUE(a.contains(a.base()));
  EXPECT_TRUE(a.contains(a.base() + 4095));
  EXPECT_FALSE(a.contains(a.base() + 4096));
  int x = 0;
  EXPECT_FALSE(a.contains(&x));
}

TEST(Arena, WriteReadRoundTrip) {
  Arena a(64 * util::KiB);
  std::memset(a.at(1000), 0xAB, 100);
  for (std::size_t i = 1000; i < 1100; ++i) {
    EXPECT_EQ(std::to_integer<unsigned>(*a.at(i)), 0xABu);
  }
}

TEST(Arena, ZeroSizeThrows) { EXPECT_THROW(Arena a(0), InternalError); }

TEST(Arena, CustomAlignment) {
  Arena a(64 * util::KiB, 1 << 16);
  EXPECT_TRUE(util::is_aligned(a.base(), 1 << 16));
}

TEST(Arena, MoveTransfersOwnership) {
  Arena a(4096);
  std::byte* base = a.base();
  Arena b = std::move(a);
  EXPECT_EQ(b.base(), base);
  EXPECT_EQ(b.size(), 4096u);
}

}  // namespace
}  // namespace ca::mem
