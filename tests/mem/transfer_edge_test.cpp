// Transfer-handle edge cases: join() idempotence, joining after the
// DataManager already retired the registry entry, destroying handles and
// engines with un-joined real copies in flight, and zero-byte transfers.
// These run under ASan and CA_RACE in tools/check.sh: every path must be
// clean whether the real memcpy has landed or not.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

#include "dm/data_manager.hpp"
#include "lockdep/lockdep.hpp"
#include "mem/copy_engine.hpp"
#include "mem/transfer.hpp"
#include "util/align.hpp"

namespace ca::mem {
namespace {

class TransferEdgeTest : public ::testing::Test {
 protected:
  TransferEdgeTest()
      : platform_(sim::Platform::cascade_lake_scaled(8 * util::MiB,
                                                     32 * util::MiB)),
        engine_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  CopyEngine engine_;
};

TEST_F(TransferEdgeTest, DoubleJoinIsIdempotent) {
  std::vector<std::byte> src(4 * util::MiB, std::byte{0x5C});
  std::vector<std::byte> dst(4 * util::MiB);
  Transfer t = engine_.copy_async(dst.data(), sim::kFast, src.data(),
                                  sim::kSlow, src.size(), clock_.now());
  t.join();
  EXPECT_TRUE(t.real_done());
  t.join();  // second join on a completed transfer: immediate no-op
  EXPECT_TRUE(t.real_done());
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST_F(TransferEdgeTest, JoinOnDefaultConstructedHandleIsNoop) {
  Transfer t;
  EXPECT_FALSE(t.valid());
  EXPECT_TRUE(t.real_done());  // vacuously done
  t.join();
  t.join();
}

TEST_F(TransferEdgeTest, ZeroByteTransferIsImmediatelyComplete) {
  std::byte a{}, b{};
  const double t0 = clock_.now();
  Transfer t = engine_.copy_async(&a, sim::kFast, &b, sim::kSlow, 0,
                                  /*earliest_start=*/t0 + 1.5);
  EXPECT_TRUE(t.valid());
  EXPECT_TRUE(t.real_done());
  EXPECT_EQ(t.bytes(), 0u);
  // Modeled schedule honors earliest_start but occupies no channel and
  // records no traffic.
  EXPECT_DOUBLE_EQ(t.start_time(), t0 + 1.5);
  EXPECT_DOUBLE_EQ(t.done_time(), t.start_time());
  EXPECT_DOUBLE_EQ(engine_.mover_horizon(), 0.0);
  EXPECT_EQ(counters_.device(sim::kFast).total(), 0u);
  EXPECT_EQ(counters_.device(sim::kSlow).total(), 0u);
  EXPECT_EQ(engine_.inflight(), 0u);
  t.join();  // joining an already-complete transfer is a no-op
}

TEST_F(TransferEdgeTest, DroppingUnjoinedHandleIsSafe) {
  // The handle may die before the background memcpy finishes: the mover
  // keeps the shared state alive, and the engine's destructor (via drain)
  // keeps the buffers outlive the copy.  ASan validates the claim.
  std::vector<std::byte> src(6 * util::MiB, std::byte{0xA1});
  std::vector<std::byte> dst(6 * util::MiB);
  {
    Transfer t = engine_.copy_async(dst.data(), sim::kFast, src.data(),
                                    sim::kSlow, src.size(), clock_.now());
    EXPECT_TRUE(t.valid());
  }  // un-joined handle destroyed here
  engine_.drain();  // bytes still land exactly once
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST_F(TransferEdgeTest, EngineDestructorDrainsUnjoinedCopies) {
  std::vector<std::byte> src(6 * util::MiB, std::byte{0x3D});
  std::vector<std::byte> dst(6 * util::MiB);
  {
    sim::Clock clock;
    telemetry::TrafficCounters counters;
    std::optional<CopyEngine> engine;
    engine.emplace(platform_, clock, counters);
    Transfer t = engine->copy_async(dst.data(), sim::kFast, src.data(),
                                    sim::kSlow, src.size(), clock.now());
    engine.reset();  // destructor drains the mover pool; no join() issued
    EXPECT_TRUE(t.real_done());
  }
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);
}

TEST_F(TransferEdgeTest, JoinAfterRetireIsSafe) {
  // The DataManager retires a registry entry once the modeled clock passes
  // its completion; a caller-held copy of the handle must stay joinable.
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform_, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 1 * util::MiB);
  dm::Region* dst = dm.allocate(sim::kFast, 1 * util::MiB);
  const double done = dm.copyto_async(*dst, *src);

  auto inflight = dm.inflight_transfers();
  ASSERT_EQ(inflight.size(), 1u);
  Transfer held = inflight.front().transfer;

  clock.advance(done - clock.now() + 1e-9, sim::TimeCategory::kOther);
  dm.retire_transfers();
  EXPECT_TRUE(dm.inflight_transfers().empty());

  held.join();  // the registry is gone; the handle still works
  EXPECT_TRUE(held.real_done());
  EXPECT_DOUBLE_EQ(held.done_time(), done);
  dm.free(dst);
  dm.free(src);
}

#if defined(CA_LOCKDEP_ENABLED)

// The join discipline, proven rather than assumed: retire_transfers and
// sync_region_real (via free of a region with a live transfer) pull handles
// out of the registry under inflight_mu_ and join AFTER releasing it.
// Lockdep's blocking detector hooks Transfer::join() entry, so if either
// path ever joined under the lock these tests go red -- under both TSan
// and CA_RACE builds (tools/check.sh runs this suite in each).

TEST_F(TransferEdgeTest, RetirePathHoldsNoLockAcrossJoin) {
  lockdep::reset_for_testing();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform_, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 1 * util::MiB);
  dm::Region* dst = dm.allocate(sim::kFast, 1 * util::MiB);
  const double done = dm.copyto_async(*dst, *src);
  clock.advance(done - clock.now() + 1e-9, sim::TimeCategory::kOther);
  dm.retire_transfers();  // joins every retiree -- with the registry lock
                          // released
  for (const auto& b : lockdep::blocking_edges()) {
    ADD_FAILURE() << "lock held across " << b.op << ": " << b.cls << " at "
                  << b.site;
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
  dm.free(dst);
  dm.free(src);
}

TEST_F(TransferEdgeTest, SyncRegionRealPathHoldsNoLockAcrossJoin) {
  lockdep::reset_for_testing();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform_, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 1 * util::MiB);
  dm::Region* dst = dm.allocate(sim::kFast, 1 * util::MiB);
  dm.copyto_async(*dst, *src);
  // Freeing with the transfer still registered forces sync_region_real to
  // join the live copies touching each region.
  dm.free(dst);
  dm.free(src);
  for (const auto& b : lockdep::blocking_edges()) {
    ADD_FAILURE() << "lock held across " << b.op << ": " << b.cls << " at "
                  << b.site;
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
  // And the acquisition-order graph stayed empty of blocking-adjacent
  // edges: no lock was nested inside the registry lock on either path.
  EXPECT_TRUE(lockdep::edges().empty());
}

#endif  // CA_LOCKDEP_ENABLED

}  // namespace
}  // namespace ca::mem
