// Relocation x in-flight fill edge cases: a region whose asynchronous fill
// is still pending may be compacted (defragment) or released (free /
// eviction) -- every such path must join the real memcpy before the bytes
// move or the storage is reused, and the modeled completion (`ready_at`)
// must survive the relocation so consumers still stall for exactly the
// remaining modeled time.  Companion to tests/mem/transfer_edge_test.cpp;
// runs under ASan and CA_RACE in tools/check.sh.
#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "mem/transfer.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca::dm {
namespace {

class RelocationFillTest : public ::testing::Test {
 protected:
  RelocationFillTest()
      : platform_(
            sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(RelocationFillTest, DefragmentJoinsPendingFillBeforeMoving) {
  Region* hole = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  std::memset(src->data(), 0x5C, src->size());

  const double done = dm_.copyto_async(*dst, *src);
  EXPECT_TRUE(dst->pending_fill().valid());
  EXPECT_DOUBLE_EQ(dst->ready_at(), done);
  const std::size_t old_offset = dst->offset();

  dm_.free(hole);               // opens the hole below `dst`
  dm_.defragment(sim::kFast);   // drains the mover, then slides `dst` down

  EXPECT_LT(dst->offset(), old_offset);
  EXPECT_EQ(dst->generation(), 1u);
  // The real memcpy was joined before move_bytes relocated the region, so
  // the filled bytes traveled with it.
  ASSERT_TRUE(dst->pending_fill().valid());
  EXPECT_TRUE(dst->pending_fill().real_done());
  for (std::size_t i = 0; i < dst->size(); i += 4 * util::KiB) {
    EXPECT_EQ(dst->data()[i], std::byte{0x5C}) << "at offset " << i;
  }
  // The *modeled* completion is a property of the transfer, not of the
  // address: relocation must not make the data "ready" early.
  EXPECT_DOUBLE_EQ(dst->ready_at(), done);

  dm_.wait_ready(*dst);
  EXPECT_GE(clock_.now(), done);
  EXPECT_DOUBLE_EQ(dst->ready_at(), 0.0);
  EXPECT_FALSE(dst->pending_fill().valid());

  dm_.free(dst);
  dm_.free(src);
}

TEST_F(RelocationFillTest, CompactionNoopKeepsGenerationAndFill) {
  // No hole: the region already sits at the lowest address, so compaction
  // must not touch its bytes, its generation, or its pending fill.
  Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  std::memset(src->data(), 0x17, src->size());
  const double done = dm_.copyto_async(*dst, *src);

  dm_.defragment(sim::kFast);

  EXPECT_EQ(dst->offset(), 0u);
  EXPECT_EQ(dst->generation(), 0u);
  ASSERT_TRUE(dst->pending_fill().valid());
  EXPECT_DOUBLE_EQ(dst->ready_at(), done);
  dm_.wait_ready(*dst);
  EXPECT_EQ(dst->data()[0], std::byte{0x17});
  dm_.free(dst);
  dm_.free(src);
}

TEST_F(RelocationFillTest, HeldFillHandleSurvivesRelocation) {
  // A caller may hold a copy of the pending_fill() handle across a
  // defragment; the shared transfer state must stay joinable even though
  // the region it filled has moved.
  Region* hole = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  const double done = dm_.copyto_async(*dst, *src);
  mem::Transfer held = dst->pending_fill();

  dm_.free(hole);
  dm_.defragment(sim::kFast);

  held.join();
  EXPECT_TRUE(held.real_done());
  EXPECT_DOUBLE_EQ(held.done_time(), done);
  dm_.free(dst);
  dm_.free(src);
}

TEST_F(RelocationFillTest, ReleaseOfFillTargetJoinsAndRetires) {
  // Eviction-style release of a region mid-fill: the storage may not be
  // reused while the mover still writes it.  release_region joins and
  // abandons the modeled completion (a prefetch evicted before use is
  // legitimate), retiring the registry entry.
  Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);

  dm_.free(dst);  // fill still pending: must join, then drop the entry
  EXPECT_TRUE(dm_.inflight_transfers().empty());
  EXPECT_EQ(dm_.async_stats().retired, 1u);

  // The freed storage is immediately reusable -- no mover thread touches it.
  Region* reuse = dm_.allocate(sim::kFast, 64 * util::KiB);
  ASSERT_NE(reuse, nullptr);
  std::memset(reuse->data(), 0x00, reuse->size());
  dm_.free(reuse);
  dm_.free(src);
}

TEST_F(RelocationFillTest, WaitThenRelocateThenRefill) {
  // Full cycle: fill, consume (wait_ready clears the handle), relocate,
  // refill at the new address.  Each fill is independent; the relocation in
  // the middle must not leak modeled state from the first into the second.
  Region* hole = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);

  std::memset(src->data(), 0x01, src->size());
  dm_.copyto_async(*dst, *src);
  dm_.wait_ready(*dst);
  EXPECT_FALSE(dst->pending_fill().valid());
  EXPECT_EQ(dst->data()[0], std::byte{0x01});

  dm_.free(hole);
  dm_.defragment(sim::kFast);
  EXPECT_EQ(dst->generation(), 1u);
  EXPECT_DOUBLE_EQ(dst->ready_at(), 0.0);
  EXPECT_EQ(dst->data()[0], std::byte{0x01});

  std::memset(src->data(), 0x02, src->size());
  const double done2 = dm_.copyto_async(*dst, *src);
  EXPECT_DOUBLE_EQ(dst->ready_at(), done2);
  dm_.wait_ready(*dst);
  EXPECT_EQ(dst->data()[0], std::byte{0x02});

  dm_.free(dst);
  dm_.free(src);
}

}  // namespace
}  // namespace ca::dm
