#include "policy/static_policy.hpp"

#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::policy {
namespace {

class StaticPolicyFixture : public ::testing::Test {
 protected:
  StaticPolicyFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     1 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(StaticPolicyFixture, PlacesEverythingOnPinnedDevice) {
  PinnedDevicePolicy p(dm_, sim::kSlow);
  for (int i = 0; i < 3; ++i) {
    dm::Object* obj = dm_.create_object(64 * util::KiB);
    p.place_new(*obj);
    EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kSlow));
    dm_.destroy_object(obj);
  }
  EXPECT_EQ(counters_.device(sim::kFast).total(), 0u);
}

TEST_F(StaticPolicyFixture, HintsAreIgnored) {
  PinnedDevicePolicy p(dm_, sim::kSlow);
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  p.place_new(*obj);
  p.will_read(*obj);
  p.will_write(*obj);
  p.will_use(*obj);
  p.archive(*obj);
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kSlow));
  dm_.destroy_object(obj);
}

TEST_F(StaticPolicyFixture, RetireHonorsEagerFlag) {
  PinnedDevicePolicy eager(dm_, sim::kSlow, /*eager_retire=*/true);
  PinnedDevicePolicy lazy(dm_, sim::kSlow, /*eager_retire=*/false);
  dm::Object* a = dm_.create_object(64);
  dm::Object* b = dm_.create_object(64);
  EXPECT_TRUE(eager.retire(*a));
  EXPECT_FALSE(lazy.retire(*b));
  dm_.destroy_object(a);
  dm_.destroy_object(b);
}

TEST_F(StaticPolicyFixture, PressureHandlerUsedBeforeOom) {
  PinnedDevicePolicy p(dm_, sim::kFast);  // tiny device: 256 KiB
  std::vector<dm::Object*> dead;
  int calls = 0;
  p.set_pressure_handler([&] {
    ++calls;
    for (auto* o : dead) dm_.destroy_object(o);
    const bool any = !dead.empty();
    dead.clear();
    return any;
  });
  for (int i = 0; i < 4; ++i) {
    dm::Object* obj = dm_.create_object(64 * util::KiB);
    p.place_new(*obj);
    dead.push_back(obj);
  }
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  p.place_new(*obj);  // triggers pressure -> succeeds
  EXPECT_EQ(calls, 1);
  dm_.destroy_object(obj);
}

TEST_F(StaticPolicyFixture, ThrowsWhenTrulyOutOfMemory) {
  PinnedDevicePolicy p(dm_, sim::kFast);
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) {
    dm::Object* obj = dm_.create_object(64 * util::KiB);
    p.place_new(*obj);
    objs.push_back(obj);
  }
  dm::Object* extra = dm_.create_object(64 * util::KiB);
  EXPECT_THROW(p.place_new(*extra), OutOfMemoryError);
  dm_.destroy_object(extra);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(StaticPolicyFixture, DefragmentsBeforeGivingUp) {
  PinnedDevicePolicy p(dm_, sim::kFast);
  // Fragment: allocate four 64K objects, destroy numbers 0 and 2.
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) {
    dm::Object* obj = dm_.create_object(64 * util::KiB);
    p.place_new(*obj);
    objs.push_back(obj);
  }
  dm_.destroy_object(objs[0]);
  dm_.destroy_object(objs[2]);
  // 128 KiB free but fragmented: placement must defragment and succeed.
  dm::Object* big = dm_.create_object(128 * util::KiB);
  p.place_new(*big);
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*big), sim::kFast));
  dm_.destroy_object(big);
  dm_.destroy_object(objs[1]);
  dm_.destroy_object(objs[3]);
}

}  // namespace
}  // namespace ca::policy
