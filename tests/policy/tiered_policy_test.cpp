// Tests for the N-tier waterfall policy on the three-tier platform
// (HBM-like / DRAM / NVRAM) -- the §III-C "higher order constructs"
// extension.
#include "policy/tiered_policy.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::policy {
namespace {

class TieredFixture : public ::testing::Test {
 protected:
  // Near tier holds two 64 KiB objects, DRAM four, NVRAM plenty.
  TieredFixture()
      : platform_(sim::Platform::three_tier_scaled(
            128 * util::KiB, 256 * util::KiB, 4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  TieredLruPolicyConfig config() {
    TieredLruPolicyConfig cfg;
    cfg.tiers = {sim::DeviceId{0}, sim::DeviceId{1}, sim::DeviceId{2}};
    cfg.min_migratable = 0;
    return cfg;
  }

  dm::Object* make(TieredLruPolicy& p, std::size_t size = 64 * util::KiB,
                   unsigned char fill = 0) {
    dm::Object* obj = dm_.create_object(size);
    dm::Region& r = p.place_new(*obj);
    std::memset(r.data(), fill, size);
    dm_.markdirty(r);
    return obj;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(TieredFixture, RequiresAtLeastTwoTiers) {
  TieredLruPolicyConfig cfg;
  cfg.tiers = {sim::DeviceId{0}};
  EXPECT_THROW(TieredLruPolicy(dm_, cfg), InternalError);
  cfg.tiers = {sim::DeviceId{0}, sim::DeviceId{0}};
  EXPECT_THROW(TieredLruPolicy(dm_, cfg), InternalError);
}

TEST_F(TieredFixture, NewObjectsBornInTopTier) {
  TieredLruPolicy p(dm_, config());
  dm::Object* obj = make(p);
  EXPECT_EQ(p.tier_of(*obj), 0u);
  EXPECT_EQ(p.resident_objects(0), 1u);
  dm_.destroy_object(obj);
}

TEST_F(TieredFixture, PressureCascadesColdObjectsDownward) {
  TieredLruPolicy p(dm_, config());
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 7; ++i) objs.push_back(make(p));
  // Top tier holds 2, middle 4; the coldest (earliest) spilled to NVRAM.
  EXPECT_EQ(p.tier_of(*objs[6]), 0u);
  EXPECT_EQ(p.tier_of(*objs[5]), 0u);
  EXPECT_EQ(p.tier_of(*objs[0]), 2u);
  EXPECT_GE(p.op_stats().demotions + p.op_stats().promotions, 0u);
  std::size_t total = 0;
  for (std::size_t t = 0; t < 3; ++t) total += p.resident_objects(t);
  EXPECT_EQ(total, objs.size());
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(TieredFixture, UseHintPromotesToTop) {
  TieredLruPolicy p(dm_, config());
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 7; ++i) objs.push_back(make(p));
  ASSERT_EQ(p.tier_of(*objs[0]), 2u);
  p.will_read(*objs[0]);
  EXPECT_EQ(p.tier_of(*objs[0]), 0u);
  EXPECT_GE(p.op_stats().promotions, 1u);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(TieredFixture, DataSurvivesFullCascade) {
  TieredLruPolicy p(dm_, config());
  dm::Object* probe = make(p, 64 * util::KiB, 0xCD);
  // Push it down two tiers with pressure, then promote it back.
  std::vector<dm::Object*> pressure;
  for (int i = 0; i < 6; ++i) pressure.push_back(make(p));
  EXPECT_EQ(p.tier_of(*probe), 2u);
  p.will_use(*probe);
  EXPECT_EQ(p.tier_of(*probe), 0u);
  const dm::Region* r = dm_.getprimary(*probe);
  for (std::size_t i = 0; i < probe->size(); i += 1001) {
    ASSERT_EQ(std::to_integer<unsigned>(r->data()[i]), 0xCDu);
  }
  dm_.check_invariants();
  dm_.destroy_object(probe);
  for (auto* o : pressure) dm_.destroy_object(o);
}

TEST_F(TieredFixture, ArchiveMakesObjectNextVictimWithinItsTier) {
  TieredLruPolicy p(dm_, config());
  dm::Object* a = make(p);
  dm::Object* b = make(p);  // top tier now full; a is colder
  p.archive(*b);            // ...but b is explicitly archived
  dm::Object* c = make(p);  // needs room: b must fall, not a
  EXPECT_EQ(p.tier_of(*b), 1u);
  EXPECT_EQ(p.tier_of(*a), 0u);
  EXPECT_EQ(p.tier_of(*c), 0u);
  for (auto* o : {a, b, c}) dm_.destroy_object(o);
}

TEST_F(TieredFixture, PinnedObjectsAreNotDemoted) {
  TieredLruPolicy p(dm_, config());
  dm::Object* pinned = make(p);
  dm_.pin(*pinned);
  std::vector<dm::Object*> pressure;
  for (int i = 0; i < 4; ++i) pressure.push_back(make(p));
  EXPECT_EQ(p.tier_of(*pinned), 0u);
  dm_.unpin(*pinned);
  dm_.destroy_object(pinned);
  for (auto* o : pressure) dm_.destroy_object(o);
}

TEST_F(TieredFixture, OversizedObjectLandsOnAFittingTier) {
  TieredLruPolicy p(dm_, config());
  dm::Object* big = dm_.create_object(512 * util::KiB);  // > top + middle
  p.place_new(*big);
  EXPECT_EQ(p.tier_of(*big), 2u);
  dm_.destroy_object(big);
}

TEST_F(TieredFixture, SingleRegionInvariant) {
  // The tiered policy keeps exactly one region per object at all times.
  TieredLruPolicy p(dm_, config());
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 7; ++i) objs.push_back(make(p));
  p.will_read(*objs[0]);
  p.archive(*objs[6]);
  for (auto* o : objs) EXPECT_EQ(o->region_count(), 1u);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(TieredFixture, WorksOnTwoTierPlatformToo) {
  // The generalization degrades gracefully to the paper's 2-tier setup.
  sim::Platform two = sim::Platform::cascade_lake_scaled(128 * util::KiB,
                                                         1 * util::MiB);
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(two, clock, counters);
  TieredLruPolicyConfig cfg;
  cfg.tiers = {sim::kFast, sim::kSlow};
  cfg.min_migratable = 0;
  TieredLruPolicy p(dm, cfg);
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) {
    dm::Object* obj = dm.create_object(64 * util::KiB);
    p.place_new(*obj);
    objs.push_back(obj);
  }
  EXPECT_EQ(p.tier_of(*objs[0]), 1u);
  EXPECT_EQ(p.tier_of(*objs[3]), 0u);
  for (auto* o : objs) dm.destroy_object(o);
}

}  // namespace
}  // namespace ca::policy
