// Policy conformance kit: the behavioural contract every Policy
// implementation must satisfy (see docs/POLICY_GUIDE.md), run against all
// bundled policies.  Downstream users can add their own factory to the
// sweep to validate a custom policy.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "dm/data_manager.hpp"
#include "policy/adaptive_policy.hpp"
#include "policy/lru_policy.hpp"
#include "policy/static_policy.hpp"
#include "policy/tiered_policy.hpp"
#include "util/align.hpp"

namespace ca::policy {
namespace {

struct PolicyCase {
  const char* name;
  std::function<std::unique_ptr<Policy>(dm::DataManager&)> make;
};

std::vector<PolicyCase> all_policies() {
  return {
      {"LruLM",
       [](dm::DataManager& dm) {
         return std::make_unique<LruPolicy>(
             dm, LruPolicyConfig{.min_migratable = 0});
       }},
      {"LruNone",
       [](dm::DataManager& dm) {
         return std::make_unique<LruPolicy>(
             dm, LruPolicyConfig{.local_alloc = false,
                                 .eager_retire = false,
                                 .min_migratable = 0});
       }},
      {"LruLMP",
       [](dm::DataManager& dm) {
         return std::make_unique<LruPolicy>(
             dm, LruPolicyConfig{.prefetch = true, .min_migratable = 0});
       }},
      {"LruAsync",
       [](dm::DataManager& dm) {
         return std::make_unique<LruPolicy>(
             dm, LruPolicyConfig{.prefetch = true,
                                 .min_migratable = 0,
                                 .async_prefetch = true});
       }},
      {"PinnedSlow",
       [](dm::DataManager& dm) {
         return std::make_unique<PinnedDevicePolicy>(dm, sim::kSlow);
       }},
      {"PinnedFast",
       [](dm::DataManager& dm) {
         return std::make_unique<PinnedDevicePolicy>(dm, sim::kFast);
       }},
      {"Tiered",
       [](dm::DataManager& dm) {
         TieredLruPolicyConfig cfg;
         cfg.tiers = {sim::kFast, sim::kSlow};
         cfg.min_migratable = 0;
         return std::make_unique<TieredLruPolicy>(dm, cfg);
       }},
      {"Adaptive",
       [](dm::DataManager& dm) {
         AdaptivePolicyConfig cfg;
         cfg.base.min_migratable = 0;
         cfg.window_kernels = 4;
         return std::make_unique<AdaptivePolicy>(dm, cfg);
       }},
  };
}

class PolicyConformance : public ::testing::TestWithParam<std::size_t> {
 protected:
  PolicyConformance()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     2 * util::MiB)),
        dm_(platform_, clock_, counters_),
        policy_(all_policies()[GetParam()].make(dm_)) {}

  dm::Object* make_object(std::size_t size = 64 * util::KiB) {
    dm::Object* obj = dm_.create_object(size);
    try {
      policy_->place_new(*obj);
    } catch (...) {
      // Mirror Runtime::new_object: no placement, no object.
      dm_.destroy_object(obj);
      throw;
    }
    return obj;
  }

  void destroy(dm::Object* obj) {
    policy_->on_destroy(*obj);
    dm_.destroy_object(obj);
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
  std::unique_ptr<Policy> policy_;
};

TEST_P(PolicyConformance, PlaceNewProducesAPrimary) {
  dm::Object* obj = make_object();
  dm::Region* primary = dm_.getprimary(*obj);
  ASSERT_NE(primary, nullptr);
  EXPECT_EQ(primary->parent(), obj);
  EXPECT_GE(primary->size(), obj->size());
  destroy(obj);
}

TEST_P(PolicyConformance, HintsNeverCorruptData) {
  dm::Object* obj = make_object();
  dm::Region* r = dm_.getprimary(*obj);
  std::memset(r->data(), 0xAB, obj->size());
  dm_.markdirty(*r);
  policy_->will_read(*obj);
  policy_->will_write(*obj);
  policy_->will_use(*obj);
  policy_->will_read_partial(*obj, 64);
  policy_->archive(*obj);
  r = dm_.getprimary(*obj);
  ASSERT_NE(r, nullptr);
  dm_.wait_ready(*r);
  for (std::size_t i = 0; i < obj->size(); i += 4097) {
    ASSERT_EQ(std::to_integer<unsigned>(r->data()[i]), 0xABu);
  }
  destroy(obj);
}

TEST_P(PolicyConformance, PinnedPrimariesSurviveAnyHint) {
  dm::Object* obj = make_object();
  dm_.pin(*obj);
  dm::Region* before = dm_.getprimary(*obj);
  policy_->will_read(*obj);
  policy_->will_write(*obj);
  policy_->archive(*obj);
  EXPECT_EQ(dm_.getprimary(*obj), before);
  dm_.unpin(*obj);
  destroy(obj);
}

TEST_P(PolicyConformance, PressureNeverDisplacesPinnedObjects) {
  dm::Object* pinned = make_object();
  dm_.pin(*pinned);
  const dm::Region* before = dm_.getprimary(*pinned);
  // Enough pressure to overflow the fast tier several times.  A policy
  // with no spill tier may legitimately run out -- but must never move
  // the pinned object.
  std::vector<dm::Object*> filler;
  for (int i = 0; i < 8; ++i) {
    try {
      filler.push_back(make_object());
    } catch (const OutOfMemoryError&) {
      break;
    }
  }
  EXPECT_EQ(dm_.getprimary(*pinned), before);
  dm_.unpin(*pinned);
  destroy(pinned);
  for (auto* o : filler) destroy(o);
}

TEST_P(PolicyConformance, RetireSemanticsAreConsistent) {
  dm::Object* obj = make_object();
  const bool released = policy_->retire(*obj);
  if (released) {
    // The runtime destroys it next; the policy must tolerate the destroy.
    destroy(obj);
  } else {
    // Storage must still be intact.
    EXPECT_NE(dm_.getprimary(*obj), nullptr);
    destroy(obj);
  }
}

TEST_P(PolicyConformance, KernelBracketsNest) {
  dm::Object* a = make_object(16 * util::KiB);
  dm::Object* b = make_object(16 * util::KiB);
  dm::Object* args[] = {a, b};
  policy_->begin_kernel(args);
  policy_->will_read(*a);
  policy_->will_write(*b);
  policy_->end_kernel();
  destroy(a);
  destroy(b);
}

TEST_P(PolicyConformance, SurvivesChurnWithInvariantsIntact) {
  std::vector<dm::Object*> live;
  util::Xoshiro256 rng(17);
  for (int step = 0; step < 200; ++step) {
    if (live.empty() || rng.uniform() < 0.6) {
      try {
        live.push_back(make_object(8 * util::KiB + rng.bounded(56) * 1024));
      } catch (const OutOfMemoryError&) {
        // Single-tier policies may genuinely fill up; that is contractual.
        dm_.check_invariants();
      }
    } else {
      const std::size_t i = rng.bounded(live.size());
      destroy(live[i]);
      live[i] = live.back();
      live.pop_back();
    }
    if (!live.empty() && rng.uniform() < 0.5) {
      dm::Object* obj = live[rng.bounded(live.size())];
      switch (rng.bounded(4)) {
        case 0: policy_->will_read(*obj); break;
        case 1: policy_->will_write(*obj); break;
        case 2: policy_->archive(*obj); break;
        case 3: policy_->will_use(*obj); break;
      }
    }
  }
  dm_.check_invariants();
  for (auto* o : live) destroy(o);
  EXPECT_EQ(dm_.live_objects(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyConformance,
    ::testing::Range<std::size_t>(0, 8),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      return all_policies()[info.param].name;
    });

}  // namespace
}  // namespace ca::policy
