#include "policy/lru_policy.hpp"

#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::policy {
namespace {

class LruPolicyFixture : public ::testing::Test {
 protected:
  // Fast tier holds exactly four 64 KiB objects.
  LruPolicyFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     2 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  LruPolicy make(LruPolicyConfig cfg = {}) { return LruPolicy(dm_, cfg); }

  dm::Object* new_object(LruPolicy& p, std::size_t size = 64 * util::KiB) {
    dm::Object* obj = dm_.create_object(size);
    p.place_new(*obj);
    return obj;
  }

  sim::DeviceId device_of(dm::Object& obj) {
    return dm_.getprimary(obj)->device();
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(LruPolicyFixture, LocalAllocPlacesInFast) {
  auto p = make({.local_alloc = true});
  dm::Object* obj = new_object(p);
  EXPECT_EQ(device_of(*obj), sim::kFast);
  EXPECT_EQ(p.fast_resident_objects(), 1u);
  // A locally allocated object has no slow copy: no initial NVRAM traffic.
  EXPECT_EQ(counters_.device(sim::kSlow).total(), 0u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, NoLocalAllocPlacesInSlow) {
  auto p = make({.local_alloc = false});
  dm::Object* obj = new_object(p);
  EXPECT_EQ(device_of(*obj), sim::kSlow);
  EXPECT_EQ(p.fast_resident_objects(), 0u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, LocalAllocFallsBackToSlowForHugeObjects) {
  auto p = make({.local_alloc = true});
  dm::Object* obj = new_object(p, 512 * util::KiB);  // > fast capacity
  EXPECT_EQ(device_of(*obj), sim::kSlow);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, LocalAllocEvictsToMakeRoom) {
  auto p = make({.local_alloc = true});
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 6; ++i) objs.push_back(new_object(p));
  // Fast holds 4; the oldest two were displaced to slow.
  EXPECT_EQ(p.fast_resident_objects(), 4u);
  EXPECT_EQ(device_of(*objs[0]), sim::kSlow);
  EXPECT_EQ(device_of(*objs[1]), sim::kSlow);
  EXPECT_EQ(device_of(*objs[5]), sim::kFast);
  EXPECT_GE(p.op_stats().evictions, 2u);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(LruPolicyFixture, WillWriteBringsObjectToFast) {
  auto p = make({.local_alloc = false});
  dm::Object* obj = new_object(p);
  ASSERT_EQ(device_of(*obj), sim::kSlow);
  p.will_write(*obj);
  EXPECT_EQ(device_of(*obj), sim::kFast);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, WillReadWithoutPrefetchLeavesDataInSlow) {
  auto p = make({.local_alloc = true, .prefetch = false});
  dm::Object* obj = new_object(p);
  p.evict(*obj);
  ASSERT_EQ(device_of(*obj), sim::kSlow);
  p.will_read(*obj);
  EXPECT_EQ(device_of(*obj), sim::kSlow);  // reads served from NVRAM
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, WillReadWithPrefetchMovesToFast) {
  auto p = make({.local_alloc = true, .prefetch = true});
  dm::Object* obj = new_object(p);
  p.evict(*obj);
  ASSERT_EQ(device_of(*obj), sim::kSlow);
  p.will_read(*obj);
  EXPECT_EQ(device_of(*obj), sim::kFast);
  EXPECT_EQ(p.op_stats().prefetches, 1u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, CacheEmulationModeFaultsReadsIn) {
  // Without L, the policy emulates a true cache: reads fault into fast.
  auto p = make({.local_alloc = false, .prefetch = false});
  dm::Object* obj = new_object(p);
  ASSERT_EQ(device_of(*obj), sim::kSlow);
  p.will_read(*obj);
  EXPECT_EQ(device_of(*obj), sim::kFast);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, ArchiveMakesObjectPreferredVictim) {
  auto p = make({.local_alloc = true});
  dm::Object* a = new_object(p);
  dm::Object* b = new_object(p);
  dm::Object* c = new_object(p);
  dm::Object* d = new_object(p);
  // LRU order (cold to hot): a b c d.  Archive d -> d becomes coldest.
  p.archive(*d);
  dm::Object* e = new_object(p);  // needs room: one eviction
  EXPECT_EQ(device_of(*d), sim::kSlow);  // d went, not a
  EXPECT_EQ(device_of(*a), sim::kFast);
  for (auto* o : {a, b, c, d, e}) dm_.destroy_object(o);
}

TEST_F(LruPolicyFixture, ArchiveDoesNotEagerlyEvict) {
  auto p = make({.local_alloc = true});
  dm::Object* obj = new_object(p);
  p.archive(*obj);
  // No memory pressure: the object stays in fast memory (paper §III-E:
  // no downside to archive when everything fits).
  EXPECT_EQ(device_of(*obj), sim::kFast);
  EXPECT_EQ(p.op_stats().evictions, 0u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, GradientObjectsAreBornFastEvenWithoutLocalAlloc) {
  LruPolicyConfig cfg;
  cfg.local_alloc = false;  // generic objects are born slow in this mode
  cfg.gradient_aware = true;
  auto p = make(cfg);
  dm::Object* g = dm_.create_object(64 * util::KiB, "grad", {},
                                    dm::ObjectClass::kGradient);
  p.place_new(*g);
  EXPECT_EQ(device_of(*g), sim::kFast);
  EXPECT_EQ(p.op_stats().gradient_hot_allocs, 1u);
  // With the class rule off the tag is inert: gradients follow the
  // generic placement.
  cfg.gradient_aware = false;
  auto q = make(cfg);
  dm::Object* h = dm_.create_object(64 * util::KiB, "grad-inert", {},
                                    dm::ObjectClass::kGradient);
  q.place_new(*h);
  EXPECT_EQ(device_of(*h), sim::kSlow);
  EXPECT_EQ(q.op_stats().gradient_hot_allocs, 0u);
  dm_.destroy_object(g);
  dm_.destroy_object(h);
}

TEST_F(LruPolicyFixture, ArchivedGradientsAreDemotedEagerly) {
  LruPolicyConfig cfg;
  cfg.local_alloc = true;
  cfg.gradient_aware = true;
  auto p = make(cfg);
  dm::Object* g = dm_.create_object(64 * util::KiB, "grad", {},
                                    dm::ObjectClass::kGradient);
  p.place_new(*g);
  ASSERT_EQ(device_of(*g), sim::kFast);
  // Applied-and-archived gradients leave the fast tier immediately (the
  // class-aware lifetime rule; contrast ArchiveDoesNotEagerlyEvict for
  // generic objects).
  p.archive(*g);
  EXPECT_EQ(device_of(*g), sim::kSlow);
  EXPECT_EQ(p.op_stats().gradient_demotes, 1u);
  dm_.destroy_object(g);
}

TEST_F(LruPolicyFixture, PinnedGradientsAreNotDemotedOnArchive) {
  LruPolicyConfig cfg;
  cfg.local_alloc = true;
  cfg.gradient_aware = true;
  auto p = make(cfg);
  dm::Object* g = dm_.create_object(64 * util::KiB, "grad", {},
                                    dm::ObjectClass::kGradient);
  p.place_new(*g);
  dm_.pin(*g);
  p.archive(*g);  // on the wire: must stay put
  EXPECT_EQ(device_of(*g), sim::kFast);
  EXPECT_EQ(p.op_stats().gradient_demotes, 0u);
  dm_.unpin(*g);
  dm_.destroy_object(g);
}

TEST_F(LruPolicyFixture, RetireWithMReleasesImmediately) {
  auto p = make({.eager_retire = true});
  dm::Object* obj = new_object(p);
  EXPECT_TRUE(p.retire(*obj));
  EXPECT_EQ(p.op_stats().retires_honored, 1u);
}

TEST_F(LruPolicyFixture, RetireWithoutMDefersToGc) {
  auto p = make({.eager_retire = false});
  dm::Object* obj = new_object(p);
  EXPECT_FALSE(p.retire(*obj));
  // Still resident.
  EXPECT_NE(dm_.getprimary(*obj), nullptr);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, InFlightObjectsAreNotDisplaced) {
  auto p = make({.local_alloc = true});
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(new_object(p));
  // Protect the two oldest (as if they were kernel arguments)...
  std::array<dm::Object*, 2> args = {objs[0], objs[1]};
  p.begin_kernel(args);
  // ...then allocate two more objects; eviction must skip the protected.
  objs.push_back(new_object(p));
  objs.push_back(new_object(p));
  EXPECT_EQ(device_of(*objs[0]), sim::kFast);
  EXPECT_EQ(device_of(*objs[1]), sim::kFast);
  EXPECT_EQ(device_of(*objs[2]), sim::kSlow);
  EXPECT_EQ(device_of(*objs[3]), sim::kSlow);
  p.end_kernel();
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(LruPolicyFixture, PinnedObjectsAreNotDisplaced) {
  auto p = make({.local_alloc = true});
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(new_object(p));
  dm_.pin(*objs[0]);
  objs.push_back(new_object(p));
  EXPECT_EQ(device_of(*objs[0]), sim::kFast);
  EXPECT_EQ(device_of(*objs[1]), sim::kSlow);
  dm_.unpin(*objs[0]);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(LruPolicyFixture, OnDestroyForgetsBookkeeping) {
  auto p = make({.local_alloc = true});
  dm::Object* obj = new_object(p);
  p.on_destroy(*obj);
  EXPECT_EQ(p.fast_resident_objects(), 0u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, FastAndSlowMustDiffer) {
  EXPECT_THROW(
      LruPolicy(dm_, {.fast = sim::kFast, .slow = sim::kFast}),
      InternalError);
}

TEST_F(LruPolicyFixture, PressureHandlerInvokedWhenSlowFills) {
  auto p = make({.local_alloc = false});
  int pressure_calls = 0;
  std::vector<dm::Object*> dead;
  p.set_pressure_handler([&] {
    ++pressure_calls;
    // Free everything "dead" like a GC would.
    for (auto* o : dead) {
      p.on_destroy(*o);
      dm_.destroy_object(o);
    }
    const bool freed = !dead.empty();
    dead.clear();
    return freed;
  });
  // Fill slow memory completely (2 MiB / 256 KiB = 8 objects).
  for (int i = 0; i < 8; ++i) dead.push_back(new_object(p, 256 * util::KiB));
  // Next allocation triggers the pressure handler which frees the rest.
  dm::Object* obj = new_object(p, 256 * util::KiB);
  EXPECT_EQ(pressure_calls, 1);
  EXPECT_GE(p.op_stats().gc_pressure_calls, 1u);
  dm_.destroy_object(obj);
}

TEST_F(LruPolicyFixture, OutOfMemoryWhenNothingReclaimable) {
  auto p = make({.local_alloc = false});
  std::vector<dm::Object*> objs;
  for (int i = 0; i < 8; ++i) objs.push_back(new_object(p, 256 * util::KiB));
  EXPECT_THROW(new_object(p, 256 * util::KiB), OutOfMemoryError);
  for (auto* o : objs) dm_.destroy_object(o);
}

}  // namespace
}  // namespace ca::policy
