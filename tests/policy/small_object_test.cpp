// Tests for the small-object pinning behaviour: objects below the
// migration-granularity threshold live in fast memory and are never
// displaced (per-transfer overhead would exceed any benefit).
#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca::policy {
namespace {

class SmallObjectFixture : public ::testing::Test {
 protected:
  SmallObjectFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     2 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  dm::Object* make(LruPolicy& p, std::size_t size) {
    dm::Object* obj = dm_.create_object(size);
    p.place_new(*obj);
    return obj;
  }

  sim::DeviceId device_of(dm::Object& obj) {
    return dm_.getprimary(obj)->device();
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(SmallObjectFixture, SmallObjectsStartInFastEvenWithoutLocalAlloc) {
  LruPolicy p(dm_, {.local_alloc = false, .min_migratable = 64 * util::KiB});
  dm::Object* tiny = make(p, 1 * util::KiB);
  dm::Object* big = make(p, 128 * util::KiB);
  EXPECT_EQ(device_of(*tiny), sim::kFast);
  EXPECT_EQ(device_of(*big), sim::kSlow);
  dm_.destroy_object(tiny);
  dm_.destroy_object(big);
}

TEST_F(SmallObjectFixture, SmallObjectsAreNeverDisplaced) {
  LruPolicy p(dm_, {.local_alloc = true, .min_migratable = 64 * util::KiB});
  dm::Object* tiny = make(p, 16 * util::KiB);
  p.archive(*tiny);  // even as the preferred victim...
  // Exhaust fast memory with big (migratable) objects: evictions must
  // skip the tiny one.
  std::vector<dm::Object*> big;
  for (int i = 0; i < 6; ++i) big.push_back(make(p, 64 * util::KiB));
  EXPECT_EQ(device_of(*tiny), sim::kFast);
  EXPECT_GE(p.op_stats().evictions, 1u);
  dm_.destroy_object(tiny);
  for (auto* o : big) dm_.destroy_object(o);
}

TEST_F(SmallObjectFixture, ThresholdZeroDisablesPinning) {
  LruPolicy p(dm_, {.local_alloc = true, .min_migratable = 0});
  dm::Object* tiny = make(p, 16 * util::KiB);
  p.archive(*tiny);
  std::vector<dm::Object*> big;
  for (int i = 0; i < 8; ++i) big.push_back(make(p, 60 * util::KiB));
  // With no threshold the tiny object is evictable like any other.
  EXPECT_EQ(device_of(*tiny), sim::kSlow);
  dm_.destroy_object(tiny);
  for (auto* o : big) dm_.destroy_object(o);
}

TEST_F(SmallObjectFixture, SmallObjectsFallBackToSlowWhenFastIsPinnedFull) {
  LruPolicy p(dm_, {.local_alloc = true, .min_migratable = 64 * util::KiB});
  // Fill fast memory completely with pinned small objects.
  std::vector<dm::Object*> tiny;
  for (int i = 0; i < 8; ++i) tiny.push_back(make(p, 32 * util::KiB));
  // Nothing is evictable; the next small object must land in slow memory
  // rather than deadlock.
  dm::Object* overflow = make(p, 32 * util::KiB);
  EXPECT_EQ(device_of(*overflow), sim::kSlow);
  dm_.destroy_object(overflow);
  for (auto* o : tiny) dm_.destroy_object(o);
}

TEST_F(SmallObjectFixture, ExactThresholdIsMigratable) {
  LruPolicy p(dm_, {.local_alloc = true, .min_migratable = 64 * util::KiB});
  dm::Object* edge = make(p, 64 * util::KiB);  // == threshold: migratable
  p.archive(*edge);
  std::vector<dm::Object*> big;
  for (int i = 0; i < 8; ++i) big.push_back(make(p, 64 * util::KiB));
  EXPECT_EQ(device_of(*edge), sim::kSlow);
  dm_.destroy_object(edge);
  for (auto* o : big) dm_.destroy_object(o);
}

}  // namespace
}  // namespace ca::policy
