// Tests that LruPolicy::evict and ::prefetch implement the exact region/
// link/dirty semantics of the paper's Listings 1 and 2.
#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca::policy {
namespace {

class ListingFixture : public ::testing::Test {
 protected:
  ListingFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     2 * util::MiB)),
        dm_(platform_, clock_, counters_),
        policy_(dm_, {.local_alloc = true}) {}

  dm::Object* fast_object(std::size_t size = 64 * util::KiB) {
    dm::Object* obj = dm_.create_object(size);
    policy_.place_new(*obj);
    EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kFast));
    return obj;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
  LruPolicy policy_;
};

TEST_F(ListingFixture, EvictAllocatesSlowCopiesAndFrees) {
  dm::Object* obj = fast_object();
  dm::Region* fast = dm_.getprimary(*obj);
  std::memset(fast->data(), 0x42, obj->size());
  dm_.markdirty(*fast);

  policy_.evict(*obj);

  dm::Region* primary = dm_.getprimary(*obj);
  ASSERT_NE(primary, nullptr);
  EXPECT_TRUE(dm_.in(*primary, sim::kSlow));
  EXPECT_EQ(obj->region_count(), 1u);  // fast region freed
  EXPECT_EQ(std::to_integer<unsigned>(primary->data()[0]), 0x42u);
  EXPECT_EQ(dm_.free_bytes(sim::kFast), dm_.capacity(sim::kFast));
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, EvictOfSlowObjectIsNoop) {
  dm::Object* obj = fast_object();
  policy_.evict(*obj);
  const auto stats_before = policy_.op_stats();
  policy_.evict(*obj);  // already slow
  EXPECT_EQ(policy_.op_stats().evictions, stats_before.evictions);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, EvictWithCleanLinkedSiblingElidesCopy) {
  dm::Object* obj = fast_object();
  // Evict (creates slow copy), then prefetch back (links fast+slow, clean).
  policy_.evict(*obj);
  ASSERT_TRUE(policy_.prefetch(*obj, true));
  ASSERT_EQ(obj->region_count(), 2u);
  ASSERT_FALSE(dm_.isdirty(*dm_.getprimary(*obj)));

  const auto slow_written_before = counters_.device(sim::kSlow).bytes_written;
  const auto elided_before = policy_.op_stats().elided_writebacks;
  policy_.evict(*obj);
  // Clean primary + existing sibling: no NVRAM write happened at all.
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, slow_written_before);
  EXPECT_EQ(policy_.op_stats().elided_writebacks, elided_before + 1);
  EXPECT_EQ(obj->region_count(), 1u);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, EvictWithDirtyPrimaryWritesBack) {
  dm::Object* obj = fast_object();
  policy_.evict(*obj);
  ASSERT_TRUE(policy_.prefetch(*obj, true));
  dm::Region* fast = dm_.getprimary(*obj);
  std::memset(fast->data(), 0x77, obj->size());
  dm_.markdirty(*fast);

  const auto slow_written_before = counters_.device(sim::kSlow).bytes_written;
  policy_.evict(*obj);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written,
            slow_written_before + obj->size());
  // The writeback propagated the new bytes.
  EXPECT_EQ(std::to_integer<unsigned>(dm_.getprimary(*obj)->data()[0]), 0x77u);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, PrefetchLinksAndSetsPrimary) {
  dm::Object* obj = fast_object();
  dm::Region* orig_fast = dm_.getprimary(*obj);
  std::memset(orig_fast->data(), 0x99, obj->size());
  dm_.markdirty(*orig_fast);
  policy_.evict(*obj);
  dm::Region* slow = dm_.getprimary(*obj);

  ASSERT_TRUE(policy_.prefetch(*obj, false));
  dm::Region* fast = dm_.getprimary(*obj);
  EXPECT_TRUE(dm_.in(*fast, sim::kFast));
  EXPECT_EQ(dm_.getlinked(*fast, sim::kSlow), slow);  // siblings
  EXPECT_EQ(obj->region_count(), 2u);
  EXPECT_EQ(std::to_integer<unsigned>(fast->data()[0]), 0x99u);
  EXPECT_FALSE(dm_.isdirty(*fast));
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, PrefetchOfFastObjectIsNoop) {
  dm::Object* obj = fast_object();
  const auto before = counters_.device(sim::kFast).bytes_written;
  EXPECT_TRUE(policy_.prefetch(*obj, true));
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, before);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, UnforcedPrefetchFailsUnderPressure) {
  std::vector<dm::Object*> fill;
  for (int i = 0; i < 4; ++i) fill.push_back(fast_object());
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  dm::Region* slow = dm_.allocate(sim::kSlow, obj->size());
  dm_.setprimary(*obj, *slow);

  EXPECT_FALSE(policy_.prefetch(*obj, /*force=*/false));
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kSlow));
  // Nothing was displaced.
  for (auto* o : fill) EXPECT_TRUE(dm_.in(*dm_.getprimary(*o), sim::kFast));

  EXPECT_TRUE(policy_.prefetch(*obj, /*force=*/true));
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kFast));
  for (auto* o : fill) dm_.destroy_object(o);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, ForcedPrefetchEvictsColdestFirst) {
  std::vector<dm::Object*> fill;
  for (int i = 0; i < 4; ++i) fill.push_back(fast_object());
  // Touch all but fill[2], making it the LRU victim.
  policy_.will_read(*fill[0]);
  policy_.will_read(*fill[1]);
  policy_.will_read(*fill[3]);

  dm::Object* obj = dm_.create_object(64 * util::KiB);
  dm::Region* slow = dm_.allocate(sim::kSlow, obj->size());
  dm_.setprimary(*obj, *slow);
  ASSERT_TRUE(policy_.prefetch(*obj, true));

  EXPECT_TRUE(dm_.in(*dm_.getprimary(*fill[2]), sim::kSlow));
  for (int i : {0, 1, 3}) {
    EXPECT_TRUE(dm_.in(*dm_.getprimary(*fill[i]), sim::kFast)) << i;
  }
  for (auto* o : fill) dm_.destroy_object(o);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, FastPrimaryInvariantHolds) {
  // Paper invariant: if an object has a region in fast memory, that region
  // is the primary.
  dm::Object* obj = fast_object();
  policy_.evict(*obj);
  policy_.prefetch(*obj, true);
  dm::Region* fast_region = obj->region_on(sim::kFast);
  ASSERT_NE(fast_region, nullptr);
  EXPECT_EQ(dm_.getprimary(*obj), fast_region);
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, EvictionRoundTripPreservesData) {
  dm::Object* obj = fast_object();
  dm::Region* r = dm_.getprimary(*obj);
  for (std::size_t i = 0; i < obj->size(); ++i) {
    r->data()[i] = static_cast<std::byte>(i % 251);
  }
  dm_.markdirty(*r);
  for (int round = 0; round < 3; ++round) {
    policy_.evict(*obj);
    ASSERT_TRUE(policy_.prefetch(*obj, true));
  }
  r = dm_.getprimary(*obj);
  for (std::size_t i = 0; i < obj->size(); ++i) {
    ASSERT_EQ(std::to_integer<unsigned>(r->data()[i]), i % 251);
  }
  dm_.destroy_object(obj);
}

TEST_F(ListingFixture, PrefetchSynchronizesTheOldPrimaryDirtyBit) {
  // Regression: prefetch used to copy into the new fast region *before*
  // linking it, so copyto never saw the regions as siblings and the old
  // slow primary kept a stale dirty bit.  A later write to the new primary
  // then produced two "dirty" copies of one object.
  dm::Object* obj = fast_object();
  dm::Region* fast0 = dm_.getprimary(*obj);
  dm_.markdirty(*fast0);
  policy_.evict(*obj);
  dm::Region* slow = dm_.getprimary(*obj);
  dm_.markdirty(*slow);

  ASSERT_TRUE(policy_.prefetch(*obj, true));
  dm::Region* fast = dm_.getprimary(*obj);
  ASSERT_NE(fast, slow);
  // Both siblings hold identical bytes and both are clean.
  EXPECT_FALSE(dm_.isdirty(*fast));
  EXPECT_FALSE(dm_.isdirty(*slow));
  dm_.markdirty(*fast);
  // Exactly one dirty region per object: the primary.
  EXPECT_FALSE(dm_.isdirty(*slow));
  dm_.destroy_object(obj);
}

}  // namespace
}  // namespace ca::policy
