// Tests for the self-tuning AdaptivePolicy (§VI extension): it must
// explore both prefetch arms, converge to the profitable one, and remain a
// faithful Policy in every other respect.
#include "policy/adaptive_policy.hpp"

#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "util/align.hpp"

namespace ca::policy {
namespace {

class AdaptiveFixture : public ::testing::Test {
 protected:
  AdaptiveFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     8 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  AdaptivePolicyConfig config(std::size_t window = 8) {
    AdaptivePolicyConfig cfg;
    cfg.base.local_alloc = true;
    cfg.base.eager_retire = true;
    cfg.base.min_migratable = 0;
    cfg.window_kernels = window;
    cfg.explore = 0.05;
    return cfg;
  }

  /// Simulate one "kernel" over `obj`: the staging bracket plus hints,
  /// charging `seconds` of compute to the clock.
  void kernel(Policy& p, dm::Object& obj, double seconds) {
    dm::Object* args[] = {&obj};
    p.begin_kernel(args);
    p.will_read(obj);
    clock_.advance(seconds, sim::TimeCategory::kCompute);
    p.end_kernel();
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(AdaptiveFixture, DelegatesPlacementAndLifecycle) {
  AdaptivePolicy p(dm_, config());
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  p.place_new(*obj);
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*obj), sim::kFast));
  EXPECT_TRUE(p.retire(*obj));
  p.on_destroy(*obj);
  dm_.destroy_object(obj);
}

TEST_F(AdaptiveFixture, SamplesBothArmsEarly) {
  AdaptivePolicy p(dm_, config(/*window=*/4));
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  p.place_new(*obj);
  for (int i = 0; i < 12; ++i) kernel(p, *obj, 0.01);
  EXPECT_GE(p.windows_run(), 2u);
  EXPECT_GE(p.arm_cost(false), 0.0);
  EXPECT_GE(p.arm_cost(true), 0.0);
  p.on_destroy(*obj);
  dm_.destroy_object(obj);
}

TEST_F(AdaptiveFixture, ConvergesToCheaperArm) {
  // Construct a workload where prefetching is artificially expensive: an
  // NVRAM-resident object whose will_read, when prefetch is on, triggers a
  // migration thrash (fast tier too small for both residents), charged as
  // movement time; with prefetch off the reads are served in place.
  AdaptivePolicy p(dm_, config(/*window=*/4));
  // Two objects that cannot fit in fast memory together.
  dm::Object* a = dm_.create_object(160 * util::KiB);
  dm::Object* b = dm_.create_object(160 * util::KiB);
  p.place_new(*a);
  p.place_new(*b);
  // Alternate reads of a and b: prefetch-on ping-pongs them through the
  // fast tier (expensive copies), prefetch-off leaves them in place.
  for (int i = 0; i < 400; ++i) {
    kernel(p, i % 2 == 0 ? *a : *b, 1e-4);
  }
  // The bandit must spend most windows with prefetching off.
  EXPECT_LT(p.prefetch_fraction(), 0.35);
  EXPECT_GT(p.arm_cost(true), p.arm_cost(false));
  p.on_destroy(*a);
  p.on_destroy(*b);
  dm_.destroy_object(a);
  dm_.destroy_object(b);
}

TEST_F(AdaptiveFixture, KeepsExploringAtConfiguredRate) {
  AdaptivePolicyConfig cfg = config(/*window=*/2);
  cfg.explore = 0.5;  // heavy exploration
  AdaptivePolicy p(dm_, cfg);
  dm::Object* obj = dm_.create_object(64 * util::KiB);
  p.place_new(*obj);
  for (int i = 0; i < 300; ++i) kernel(p, *obj, 1e-4);
  // With 50% exploration both arms keep getting sampled.
  EXPECT_GT(p.prefetch_fraction(), 0.1);
  EXPECT_LT(p.prefetch_fraction(), 0.9);
  p.on_destroy(*obj);
  dm_.destroy_object(obj);
}

TEST_F(AdaptiveFixture, ValidatesConfiguration) {
  AdaptivePolicyConfig cfg = config();
  cfg.window_kernels = 0;
  EXPECT_THROW(AdaptivePolicy(dm_, cfg), InternalError);
  cfg = config();
  cfg.explore = 1.5;
  EXPECT_THROW(AdaptivePolicy(dm_, cfg), InternalError);
  cfg = config();
  cfg.ema = 0.0;
  EXPECT_THROW(AdaptivePolicy(dm_, cfg), InternalError);
}

}  // namespace
}  // namespace ca::policy
