// comm::CommEngine unit tests: real summation correctness through pinned
// spans, wire/pick accounting, the two-completion discipline (modeled
// times fixed at submit, real completion via join), and shard validation.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <vector>

#include "comm/comm_engine.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::comm {
namespace {

class CommEngineFixture : public ::testing::Test {
 protected:
  CommEngineFixture()
      : platform_(sim::Platform::cascade_lake_scaled(4 * util::MiB,
                                                     16 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  /// A fast-tier gradient object with storage attached.
  dm::Object* make_grad(std::size_t bytes, const char* name) {
    dm::Object* obj = dm_.create_object(bytes, name, {},
                                        dm::ObjectClass::kGradient);
    dm::Region* r = dm_.allocate(sim::kFast, bytes);
    if (r == nullptr) return nullptr;
    dm_.setprimary(*obj, *r);
    return obj;
  }

  void fill(dm::Object& obj, float value) {
    dm::PinnedSpan span = dm_.access(obj, /*write=*/true);
    auto* f = reinterpret_cast<float*>(span.data());
    for (std::size_t i = 0; i < span.size_bytes() / sizeof(float); ++i) {
      f[i] = value + static_cast<float>(i);
    }
  }

  std::vector<float> read(dm::Object& obj) {
    dm::PinnedSpan span = dm_.access(obj, /*write=*/false);
    std::vector<float> out(span.size_bytes() / sizeof(float));
    std::memcpy(out.data(), span.data(), span.size_bytes());
    return out;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(CommEngineFixture, AllreduceSumsAllShardsInPlace) {
  constexpr std::size_t kBytes = 1024;
  constexpr std::size_t kWorkers = 3;
  CommEngine eng(CommConfig{kWorkers, LinkModel::ethernet_scaled(), 1, {}});
  std::vector<dm::Object*> grads;
  std::vector<dm::PinnedSpan> parts;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    dm::Object* g = make_grad(kBytes, "g");
    ASSERT_NE(g, nullptr);
    fill(*g, static_cast<float>(w + 1));
    grads.push_back(g);
    parts.push_back(dm_.access(*g, /*write=*/true));
  }
  Reduction red = eng.allreduce_async(std::move(parts), /*earliest=*/0.0);
  ASSERT_TRUE(red.valid());
  red.join();
  EXPECT_TRUE(red.real_done());
  // Every worker holds the sum: (1+i) + (2+i) + (3+i) = 6 + 3i.
  for (dm::Object* g : grads) {
    const std::vector<float> got = read(*g);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], 6.0f + 3.0f * static_cast<float>(i)) << "i=" << i;
    }
  }
  // The pins dropped with the reduction: the buckets can retire now.
  for (dm::Object* g : grads) {
    EXPECT_FALSE(g->pinned());
    dm_.destroy_object(g);
  }
}

TEST_F(CommEngineFixture, StatsAccountWireBytesPicksAndOccupancy) {
  constexpr std::size_t kBytes = 64 * util::KiB;
  CommEngine eng(CommConfig{2, LinkModel::ethernet_scaled(), 1,
                            Algorithm::kTree});
  for (int i = 0; i < 2; ++i) {
    dm::Object* a = make_grad(kBytes, "a");
    dm::Object* b = make_grad(kBytes, "b");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    std::vector<dm::PinnedSpan> parts;
    parts.push_back(dm_.access(*a, /*write=*/true));
    parts.push_back(dm_.access(*b, /*write=*/true));
    eng.allreduce_async(std::move(parts), 0.0).join();
    dm_.destroy_object(a);
    dm_.destroy_object(b);
  }
  const CommStats s = eng.stats();
  EXPECT_EQ(s.reductions, 2u);
  EXPECT_EQ(s.tree_picks, 2u);  // forced
  EXPECT_EQ(s.ring_picks, 0u);
  EXPECT_EQ(s.bytes_on_wire, 2 * wire_bytes(Algorithm::kTree, 2, kBytes));
  EXPECT_GT(s.busy_seconds, 0.0);
  EXPECT_GT(s.last_done, 0.0);
}

TEST_F(CommEngineFixture, PickForcesOrComparesCosts) {
  const LinkModel link = LinkModel::ethernet_scaled();
  CommEngine by_size(CommConfig{8, link, 1, {}});
  EXPECT_EQ(by_size.pick(1024), Algorithm::kTree);  // latency-bound
  EXPECT_EQ(by_size.pick(16 * util::MiB), Algorithm::kRing);
  CommEngine forced(CommConfig{8, link, 1, Algorithm::kRing});
  EXPECT_EQ(forced.pick(1024), Algorithm::kRing);
}

TEST_F(CommEngineFixture, ModeledTimesAreFixedAtSubmitAndChainable) {
  constexpr std::size_t kBytes = 256 * util::KiB;
  const LinkModel link = LinkModel::ethernet_scaled();
  auto run = [&](double earliest0) {
    CommEngine eng(CommConfig{2, link, 1, {}});
    std::vector<double> dones;
    for (int i = 0; i < 3; ++i) {
      dm::Object* a = make_grad(kBytes, "a");
      dm::Object* b = make_grad(kBytes, "b");
      std::vector<dm::PinnedSpan> parts;
      parts.push_back(dm_.access(*a, /*write=*/true));
      parts.push_back(dm_.access(*b, /*write=*/true));
      Reduction r = eng.allreduce_async(std::move(parts), earliest0 + i);
      EXPECT_GE(r.start_time(), earliest0 + i);
      EXPECT_GT(r.done_time(), r.start_time());
      dones.push_back(r.done_time());
      r.join();
      dm_.destroy_object(a);
      dm_.destroy_object(b);
    }
    return dones;
  };
  // Modeled times depend only on the submission sequence, never on host
  // scheduling: two identical sequences agree exactly.
  EXPECT_EQ(run(1.0), run(1.0));
}

TEST_F(CommEngineFixture, ShardValidationRejectsBadInput) {
  CommEngine eng(CommConfig{2, LinkModel::ethernet_scaled(), 1, {}});
  dm::Object* a = make_grad(1024, "a");
  dm::Object* b = make_grad(2048, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  {
    // One shard per worker.
    std::vector<dm::PinnedSpan> one;
    one.push_back(dm_.access(*a, /*write=*/true));
    EXPECT_THROW(eng.allreduce_async(std::move(one), 0.0), Error);
  }
  {
    // Equal sizes.
    std::vector<dm::PinnedSpan> parts;
    parts.push_back(dm_.access(*a, /*write=*/true));
    parts.push_back(dm_.access(*b, /*write=*/true));
    EXPECT_THROW(eng.allreduce_async(std::move(parts), 0.0), Error);
  }
  dm_.destroy_object(a);
  dm_.destroy_object(b);
  // A default Reduction joins as a no-op.
  Reduction idle;
  idle.join();
  EXPECT_TRUE(idle.real_done());
  EXPECT_FALSE(idle.valid());
}

}  // namespace
}  // namespace ca::comm
