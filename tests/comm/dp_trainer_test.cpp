// dp::Trainer tests: the bucketed data-parallel step end to end (layout,
// overlap timeline, tenant accounting, bucket lifetime) plus the
// determinism contract -- same seed, same bitwise parameters on every
// replica and every run, and identical simulated comm seconds.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "dnn/dp_trainer.hpp"
#include "dnn/models.hpp"
#include "util/align.hpp"

namespace ca::dp {
namespace {

TrainerConfig tiny_config(dnn::Backend backend) {
  TrainerConfig cfg;
  cfg.workers = 2;
  cfg.model = dnn::ModelSpec::vgg_tiny();
  cfg.backend = backend;
  cfg.bucket_bytes = 8 * util::KiB;
  cfg.dram_bytes = 32 * util::MiB;
  cfg.nvram_bytes = 64 * util::MiB;
  cfg.kernel_threads = 2;
  cfg.comm_pool_threads = 1;
  cfg.seed = 7;
  return cfg;
}

/// Every parameter tensor of worker `w`, as raw bytes (read through the
/// sanctioned span API).
std::vector<std::vector<std::uint8_t>> param_bytes(Trainer& t,
                                                   std::size_t w) {
  std::vector<std::vector<std::uint8_t>> out;
  core::Runtime& rt = t.worker_runtime(w);
  for (const dnn::Tensor& p : t.worker_engine(w).parameters()) {
    dm::PinnedSpan span = rt.access(*p.object(), /*write=*/false);
    std::vector<std::uint8_t> bytes(span.size_bytes());
    std::memcpy(bytes.data(), span.data(), span.size_bytes());
    out.push_back(std::move(bytes));
  }
  return out;
}

TEST(DpTrainer, StepProducesACoherentOverlapTimeline) {
  Trainer t(tiny_config(dnn::Backend::kSim));
  const StepMetrics first = t.step();  // builds the bucket layout
  EXPECT_GT(first.buckets, 0u);
  EXPECT_EQ(first.buckets, t.bucket_count());
  const StepMetrics m = t.step();
  EXPECT_GT(m.compute_seconds, 0.0);
  EXPECT_GT(m.comm_busy_seconds, 0.0);
  EXPECT_GE(m.step_seconds,
            m.compute_seconds + m.optimizer_seconds - 1e-12);
  // exposed + overlapped == busy (the split is exhaustive).
  EXPECT_NEAR(m.comm_exposed_seconds + m.comm_overlapped_seconds,
              m.comm_busy_seconds, 1e-9);
  EXPECT_GT(m.samples_per_second, 0.0);
  EXPECT_EQ(m.ring_picks + m.tree_picks, m.buckets);
  // The rollup accumulates both steps.
  EXPECT_EQ(t.comm_counters().reductions, 2 * m.buckets);
  EXPECT_GT(t.comm_counters().bytes_on_wire, 0u);
}

TEST(DpTrainer, SerializedBaselineExposesAllCommTime) {
  TrainerConfig cfg = tiny_config(dnn::Backend::kSim);
  cfg.overlap = false;
  Trainer t(cfg);
  t.step();
  const StepMetrics m = t.step();
  // Nothing hides: every busy second extends the step.
  EXPECT_NEAR(m.comm_exposed_seconds, m.comm_busy_seconds, 1e-9);
  EXPECT_NEAR(m.comm_overlapped_seconds, 0.0, 1e-9);
}

TEST(DpTrainer, WorkersAreDistinctTenantsOfOneSharedHeap) {
  Trainer t(tiny_config(dnn::Backend::kSim));
  t.step();
  dm::DataManager& dm = t.heap().manager;
  ASSERT_EQ(t.worker_count(), 2u);
  const dm::TenantId t0 = t.worker_runtime(0).tenant();
  const dm::TenantId t1 = t.worker_runtime(1).tenant();
  EXPECT_NE(t0.value, t1.value);
  // Each replica's parameters are charged to its own tenant.
  for (const dm::TenantId id : {t0, t1}) {
    const auto stats = dm.tenant_stats(id);
    std::uint64_t resident = 0;
    for (const auto bytes : stats.resident) resident += bytes;
    EXPECT_GT(resident, 0u);
  }
}

TEST(DpTrainer, GradientBucketsRetireAfterTheApply) {
  Trainer t(tiny_config(dnn::Backend::kSim));
  t.step();
  // Between steps no kGradient object survives: buckets are allocated at
  // backward start and retired the moment the reduced result is applied.
  std::size_t live_gradients = 0;
  t.heap().manager.for_each_object([&](const dm::Object& o) {
    if (o.object_class() == dm::ObjectClass::kGradient) ++live_gradients;
  });
  EXPECT_EQ(live_gradients, 0u);
}

TEST(DpTrainer, ReplicasStayBitwiseIdenticalAndRunsReproduce) {
  // kReal: actual gradients flow through pack -> allreduce -> scale ->
  // unpack -> SGD, so replica agreement proves the reduction is exact and
  // canonically ordered, not merely that seeding matched.
  auto run = [] {
    Trainer t(tiny_config(dnn::Backend::kReal));
    double comm_seconds = 0.0;
    float loss = 0.0f;
    for (int i = 0; i < 2; ++i) {
      const StepMetrics m = t.step();
      comm_seconds += m.comm_busy_seconds + m.comm_exposed_seconds;
      loss = m.loss;
    }
    struct Result {
      std::vector<std::vector<std::uint8_t>> w0, w1;
      double comm_seconds;
      float loss;
    };
    return Result{param_bytes(t, 0), param_bytes(t, 1), comm_seconds, loss};
  };
  const auto a = run();
  const auto b = run();
  // Within a run: the replicas applied the same reduced gradients to the
  // same initial parameters -- bitwise equal, tensor by tensor.
  ASSERT_EQ(a.w0.size(), a.w1.size());
  for (std::size_t i = 0; i < a.w0.size(); ++i) {
    EXPECT_EQ(a.w0[i], a.w1[i]) << "replicas diverged at parameter " << i;
  }
  // Across runs: same seed, same bytes, same modeled comm seconds (exact
  // -- the schedule is computed from submission order alone), same loss.
  ASSERT_EQ(a.w0.size(), b.w0.size());
  for (std::size_t i = 0; i < a.w0.size(); ++i) {
    EXPECT_EQ(a.w0[i], b.w0[i]) << "runs diverged at parameter " << i;
  }
  EXPECT_EQ(a.comm_seconds, b.comm_seconds);
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_NE(a.loss, 0.0f);  // real math actually ran
}

TEST(DpTrainer, ForcedAlgorithmsChangeTheModeledCost) {
  TrainerConfig ring_cfg = tiny_config(dnn::Backend::kSim);
  ring_cfg.force_algorithm = comm::Algorithm::kRing;
  TrainerConfig tree_cfg = ring_cfg;
  tree_cfg.force_algorithm = comm::Algorithm::kTree;
  Trainer ring(ring_cfg);
  Trainer tree(tree_cfg);
  ring.step();
  tree.step();
  const StepMetrics mr = ring.step();
  const StepMetrics mt = tree.step();
  EXPECT_EQ(mr.ring_picks, mr.buckets);
  EXPECT_EQ(mt.tree_picks, mt.buckets);
  // vgg_tiny buckets are small (latency-bound regime): at K=2 ring still
  // wins on bytes, but the two schedules must at least disagree.
  EXPECT_NE(mr.comm_busy_seconds, mt.comm_busy_seconds);
}

}  // namespace
}  // namespace ca::dp
