// comm:: cost-model unit tests: the alpha-beta link, the ring/tree closed
// forms, the size-based pick with its crossover, wire-byte accounting, and
// the Interconnect's deterministic contention-aware port schedules.
#include <gtest/gtest.h>

#include <cstddef>

#include "comm/allreduce.hpp"
#include "comm/link_model.hpp"
#include "sim/bandwidth.hpp"
#include "util/align.hpp"

namespace ca::comm {
namespace {

/// A flat 1 MiB/s (model bytes/s) link with 1ms per-message latency:
/// every cost below is hand-computable.
LinkModel flat_link(double latency = 1e-3, double bw = 1024.0 * 1024.0) {
  LinkModel link;
  link.latency_s = latency;
  link.curve = sim::BandwidthCurve::flat(bw);
  return link;
}

TEST(LinkModel, SecondsIsLatencyPlusBytesOverBandwidth) {
  const LinkModel link = flat_link();
  EXPECT_DOUBLE_EQ(link.seconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(link.seconds(util::MiB), 1e-3 + 1.0);
}

TEST(LinkModel, ContendedStreamsUseTheCurve) {
  LinkModel link;
  link.latency_s = 0.0;
  link.curve = sim::BandwidthCurve{{1, 1000.0}, {2, 400.0}};
  EXPECT_DOUBLE_EQ(link.seconds(1000, 1), 1.0);
  EXPECT_DOUBLE_EQ(link.seconds(1000, 2), 2.5);
}

TEST(LinkModel, PresetsAreWellFormed) {
  for (const LinkModel& link :
       {LinkModel::ethernet_scaled(), LinkModel::ethernet_25g_scaled()}) {
    EXPECT_GT(link.latency_s, 0.0);
    ASSERT_FALSE(link.curve.empty());
    // Fair sharing: per-stream bandwidth decreases with contention.
    EXPECT_GT(link.curve.at(1), link.curve.at(4));
  }
  EXPECT_GT(LinkModel::ethernet_scaled().curve.peak(),
            LinkModel::ethernet_25g_scaled().curve.peak());
}

TEST(AllreduceCost, RingIsTwoKMinusOneChunkSteps) {
  const LinkModel link = flat_link();
  // K=4, B=4 MiB: 6 steps of a 1 MiB chunk = 6 * (1ms + 1s).
  EXPECT_DOUBLE_EQ(ring_seconds(link, 4, 4 * util::MiB), 6 * (1e-3 + 1.0));
  // Chunk is ceil(B/K).
  EXPECT_DOUBLE_EQ(ring_seconds(link, 4, 4), 6 * link.seconds(1));
  EXPECT_DOUBLE_EQ(ring_seconds(link, 2, util::MiB), 2 * (1e-3 + 0.5));
}

TEST(AllreduceCost, TreeIsTwoLogRoundsOfWholeBuffers) {
  const LinkModel link = flat_link();
  // K=4: ceil(log2 4) = 2 reduce rounds + 2 broadcast rounds, whole B each.
  EXPECT_DOUBLE_EQ(tree_seconds(link, 4, util::MiB), 4 * (1e-3 + 1.0));
  // K=5..8 all cost ceil(log2 K) = 3 rounds per phase.
  EXPECT_DOUBLE_EQ(tree_seconds(link, 5, util::MiB),
                   tree_seconds(link, 8, util::MiB));
}

TEST(AllreduceCost, DegenerateWorkerCountsCostNothing) {
  const LinkModel link = flat_link();
  EXPECT_DOUBLE_EQ(ring_seconds(link, 1, util::MiB), 0.0);
  EXPECT_DOUBLE_EQ(tree_seconds(link, 1, util::MiB), 0.0);
  EXPECT_EQ(wire_bytes(Algorithm::kRing, 1, util::MiB), 0u);
}

TEST(AllreduceCost, PickIsLatencyVsBandwidthWithRingTies) {
  const LinkModel link = flat_link();
  // K=2: ring's 2 half-buffer steps always beat tree's 2 full-buffer
  // rounds -- latency terms are equal, bytes are halved.
  EXPECT_EQ(pick_algorithm(link, 2, 64), Algorithm::kRing);
  EXPECT_EQ(crossover_bytes(link, 2), 0u);
  // K=8: tiny buckets pay 14 ring latencies vs 6 tree latencies.
  EXPECT_EQ(pick_algorithm(link, 8, 64), Algorithm::kTree);
  EXPECT_EQ(pick_algorithm(link, 8, 16 * util::MiB), Algorithm::kRing);
  const std::size_t x = crossover_bytes(link, 8);
  ASSERT_GT(x, 0u);
  // The boundary is exact: tree at (or below) x-1, ring from x on.
  EXPECT_EQ(pick_algorithm(link, 8, x - 1), Algorithm::kTree);
  EXPECT_EQ(pick_algorithm(link, 8, x), Algorithm::kRing);
}

TEST(AllreduceCost, WireBytesMatchTheSchedules) {
  // Ring: K * 2(K-1) chunks; tree: 2(K-1) whole buffers.
  EXPECT_EQ(wire_bytes(Algorithm::kRing, 4, 4 * util::MiB),
            std::uint64_t{4} * 6 * util::MiB);
  EXPECT_EQ(wire_bytes(Algorithm::kTree, 4, 4 * util::MiB),
            std::uint64_t{6} * 4 * util::MiB);
  // Ring moves at most 2/K more than its lower bound even when B % K != 0.
  EXPECT_EQ(wire_bytes(Algorithm::kRing, 4, 10), std::uint64_t{4} * 6 * 3);
}

TEST(Interconnect, IdleScheduleMatchesTheClosedForm) {
  const LinkModel link = flat_link();
  Interconnect net(4, link);
  const auto t = net.schedule_allreduce(Algorithm::kRing, 4 * util::MiB, 2.0);
  EXPECT_DOUBLE_EQ(t.start, 2.0);
  EXPECT_DOUBLE_EQ(t.done, 2.0 + ring_seconds(link, 4, 4 * util::MiB));
  EXPECT_EQ(t.steps, 6u);
  EXPECT_EQ(t.max_streams, 1u);
}

TEST(Interconnect, TreeScheduleMatchesTheClosedForm) {
  const LinkModel link = flat_link();
  Interconnect net(8, link);
  const auto t = net.schedule_allreduce(Algorithm::kTree, util::MiB, 0.0);
  EXPECT_DOUBLE_EQ(t.done, tree_seconds(link, 8, util::MiB));
  EXPECT_EQ(t.steps, 6u);  // 3 reduce rounds + 3 broadcast rounds
}

TEST(Interconnect, OverlappingCollectivesContend) {
  LinkModel link;
  link.latency_s = 0.0;
  link.curve = sim::BandwidthCurve{{1, 1000.0}, {2, 400.0}};
  Interconnect net(2, link);
  // Alone: 2 steps of 500 bytes at 1000 B/s = 1s.
  const auto a = net.schedule_allreduce(Algorithm::kRing, 1000, 0.0);
  EXPECT_DOUBLE_EQ(a.done, 1.0);
  // Same window: b's first step sees a's occupancy and runs at the
  // 2-stream rate (500 B at 400 B/s = 1.25s); by then a has retired, so
  // b's second step runs idle (0.5s).  Contention is causal -- an earlier
  // collective is never re-timed -- and deterministic.
  const auto b = net.schedule_allreduce(Algorithm::kRing, 1000, 0.0);
  EXPECT_DOUBLE_EQ(b.done, 1.75);
  EXPECT_GE(b.max_streams, 2u);
  // Disjoint window: idle again.
  const auto c = net.schedule_allreduce(Algorithm::kRing, 1000, 100.0);
  EXPECT_DOUBLE_EQ(c.done - c.start, 1.0);
  EXPECT_EQ(c.max_streams, 1u);
}

TEST(Interconnect, SchedulesAreDeterministic) {
  const LinkModel link = LinkModel::ethernet_scaled();
  auto run = [&link] {
    Interconnect net(4, link);
    double sig = 0.0;
    for (int i = 0; i < 16; ++i) {
      const auto t = net.schedule_allreduce(
          i % 2 == 0 ? Algorithm::kRing : Algorithm::kTree,
          static_cast<std::size_t>(i + 1) * 100 * 1024, 0.25 * i);
      sig = 31.0 * sig + t.done + t.max_streams;
    }
    return sig;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ca::comm
