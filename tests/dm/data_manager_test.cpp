#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::dm {
namespace {

class DmApiFixture : public ::testing::Test {
 protected:
  DmApiFixture()
      : platform_(sim::Platform::cascade_lake_scaled(1 * util::MiB,
                                                     4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(DmApiFixture, CopyToMovesBytesAndCleansDirty) {
  Region* src = dm_.allocate(sim::kFast, 4096);
  Region* dst = dm_.allocate(sim::kSlow, 4096);
  ASSERT_TRUE(src && dst);
  std::memset(src->data(), 0x5A, 4096);
  dm_.markdirty(*src);
  dm_.markdirty(*dst);
  dm_.copyto(*dst, *src);
  EXPECT_EQ(std::memcmp(dst->data(), src->data(), 4096), 0);
  EXPECT_FALSE(dst->dirty());
  // src is an orphan unrelated to dst: its dirty bit is untouched.
  EXPECT_TRUE(src->dirty());
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmApiFixture, CopyToBetweenSiblingsSynchronizesDirtyBits) {
  Object* obj = dm_.create_object(4096);
  Region* slow = dm_.allocate(sim::kSlow, 4096);
  dm_.setprimary(*obj, *slow);
  Region* fast = dm_.allocate(sim::kFast, 4096);
  dm_.link(*slow, *fast);
  dm_.markdirty(*fast);
  dm_.copyto(*slow, *fast);
  EXPECT_FALSE(fast->dirty());
  EXPECT_FALSE(slow->dirty());
  dm_.destroy_object(obj);
}

TEST_F(DmApiFixture, CopyToSmallerDestinationRejected) {
  Region* src = dm_.allocate(sim::kFast, 4096);
  Region* dst = dm_.allocate(sim::kSlow, 1024);
  EXPECT_THROW(dm_.copyto(*dst, *src), UsageError);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmApiFixture, CopyChargesTimeAndTraffic) {
  Region* src = dm_.allocate(sim::kFast, 512 * util::KiB);
  Region* dst = dm_.allocate(sim::kSlow, 512 * util::KiB);
  dm_.copyto(*dst, *src);
  EXPECT_GT(clock_.spent(sim::TimeCategory::kMovement), 0.0);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_read, 512 * util::KiB);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_written, 512 * util::KiB);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmApiFixture, FreeLinkedSecondaryDetachesIt) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  Region* fast = dm_.allocate(sim::kFast, 1024);
  dm_.link(*slow, *fast);
  dm_.free(fast);  // implicit unlink
  EXPECT_EQ(obj->region_count(), 1u);
  EXPECT_EQ(dm_.getlinked(*slow, sim::kFast), nullptr);
  dm_.destroy_object(obj);
}

TEST_F(DmApiFixture, FreePrimaryWithSiblingRejected) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  Region* fast = dm_.allocate(sim::kFast, 1024);
  dm_.link(*slow, *fast);
  EXPECT_THROW(dm_.free(slow), UsageError);
  dm_.destroy_object(obj);
}

TEST_F(DmApiFixture, FreeSolePrimaryAllowed) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  dm_.free(slow);
  EXPECT_EQ(obj->primary(), nullptr);
  EXPECT_EQ(obj->region_count(), 0u);
  dm_.destroy_object(obj);
}

TEST_F(DmApiFixture, DoubleFreeRejected) {
  Region* r = dm_.allocate(sim::kFast, 64);
  dm_.free(r);
  EXPECT_THROW(dm_.free(r), UsageError);
}

TEST_F(DmApiFixture, DeviceStatsReflectAllocations) {
  const auto before = dm_.device_stats(sim::kFast);
  EXPECT_EQ(before.allocated, 0u);
  Region* r = dm_.allocate(sim::kFast, 100 * util::KiB);
  const auto after = dm_.device_stats(sim::kFast);
  EXPECT_EQ(after.allocated, util::align_up(100 * util::KiB, 64));
  EXPECT_EQ(after.regions, 1u);
  EXPECT_LT(after.free_bytes, before.free_bytes);
  dm_.free(r);
}

TEST_F(DmApiFixture, ResidentBytesSumsDevices) {
  Region* a = dm_.allocate(sim::kFast, 64 * util::KiB);
  Region* b = dm_.allocate(sim::kSlow, 128 * util::KiB);
  EXPECT_EQ(dm_.resident_bytes(), 192 * util::KiB);
  dm_.free(a);
  dm_.free(b);
  EXPECT_EQ(dm_.resident_bytes(), 0u);
}

TEST_F(DmApiFixture, DataSurvivesMigrationRoundTrip) {
  // fast -> slow -> fast round trip preserves every byte.
  Object* obj = dm_.create_object(64 * util::KiB);
  Region* fast = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.setprimary(*obj, *fast);
  for (std::size_t i = 0; i < 64 * util::KiB; ++i) {
    fast->data()[i] = static_cast<std::byte>(i * 131 + 17);
  }
  // Evict to slow.
  Region* slow = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm_.copyto(*slow, *fast);
  dm_.setprimary(*obj, *slow);
  dm_.free(fast);
  // Bring back.
  Region* fast2 = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto(*fast2, *slow);
  dm_.link(*slow, *fast2);
  dm_.setprimary(*obj, *fast2);
  for (std::size_t i = 0; i < 64 * util::KiB; ++i) {
    ASSERT_EQ(std::to_integer<unsigned>(fast2->data()[i]),
              static_cast<unsigned char>(i * 131 + 17));
  }
  dm_.destroy_object(obj);
}

TEST_F(DmApiFixture, InvariantsHoldAfterMixedWorkload) {
  std::vector<Object*> objects;
  for (int i = 0; i < 20; ++i) {
    Object* obj = dm_.create_object(8 * util::KiB);
    Region* r = dm_.allocate(i % 2 == 0 ? sim::kFast : sim::kSlow,
                             8 * util::KiB);
    ASSERT_NE(r, nullptr);
    dm_.setprimary(*obj, *r);
    objects.push_back(obj);
  }
  dm_.check_invariants();
  for (std::size_t i = 0; i < objects.size(); i += 2) {
    dm_.destroy_object(objects[i]);
  }
  dm_.check_invariants();
  for (std::size_t i = 1; i < objects.size(); i += 2) {
    dm_.destroy_object(objects[i]);
  }
  dm_.check_invariants();
  EXPECT_EQ(dm_.live_objects(), 0u);
  EXPECT_EQ(dm_.live_regions(), 0u);
}

TEST_F(DmApiFixture, DestroyUnknownObjectRejected) {
  Object* obj = dm_.create_object(64);
  dm_.destroy_object(obj);
  EXPECT_THROW(dm_.destroy_object(obj), UsageError);
}

}  // namespace
}  // namespace ca::dm
