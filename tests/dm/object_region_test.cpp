#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::dm {
namespace {

class DmFixture : public ::testing::Test {
 protected:
  DmFixture()
      : platform_(sim::Platform::cascade_lake_scaled(1 * util::MiB,
                                                     4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(DmFixture, CreateObjectHasNoStorage) {
  Object* obj = dm_.create_object(1024, "x");
  EXPECT_EQ(obj->size(), 1024u);
  EXPECT_EQ(obj->name(), "x");
  EXPECT_EQ(obj->primary(), nullptr);
  EXPECT_EQ(obj->region_count(), 0u);
  EXPECT_FALSE(obj->pinned());
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, ObjectIdsAreUnique) {
  Object* a = dm_.create_object(64);
  Object* b = dm_.create_object(64);
  EXPECT_NE(a->id(), b->id());
  dm_.destroy_object(a);
  dm_.destroy_object(b);
}

TEST_F(DmFixture, ZeroSizeObjectRejected) {
  EXPECT_THROW(dm_.create_object(0), UsageError);
}

TEST_F(DmFixture, AllocateOrphanRegion) {
  Region* r = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 4096u);
  EXPECT_EQ(r->device(), sim::kFast);
  EXPECT_EQ(r->parent(), nullptr);
  EXPECT_FALSE(r->dirty());
  EXPECT_NE(r->data(), nullptr);
  dm_.free(r);
}

TEST_F(DmFixture, AllocationFailureReturnsNull) {
  Region* r = dm_.allocate(sim::kFast, 2 * util::MiB);  // > fast capacity
  EXPECT_EQ(r, nullptr);
}

TEST_F(DmFixture, SetPrimaryAttachesOrphan) {
  Object* obj = dm_.create_object(1024);
  Region* r = dm_.allocate(sim::kSlow, 1024);
  ASSERT_NE(r, nullptr);
  dm_.setprimary(*obj, *r);
  EXPECT_EQ(dm_.getprimary(*obj), r);
  EXPECT_EQ(r->parent(), obj);
  EXPECT_EQ(obj->region_on(sim::kSlow), r);
  dm_.destroy_object(obj);
  EXPECT_EQ(dm_.live_regions(), 0u);
}

TEST_F(DmFixture, SetPrimaryRejectsUndersizedRegion) {
  Object* obj = dm_.create_object(2048);
  Region* r = dm_.allocate(sim::kSlow, 1024);
  ASSERT_NE(r, nullptr);
  EXPECT_THROW(dm_.setprimary(*obj, *r), UsageError);
  dm_.free(r);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, SetPrimaryRejectsForeignRegion) {
  Object* a = dm_.create_object(1024);
  Object* b = dm_.create_object(1024);
  Region* ra = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*a, *ra);
  EXPECT_THROW(dm_.setprimary(*b, *ra), UsageError);
  dm_.destroy_object(a);
  dm_.destroy_object(b);
}

TEST_F(DmFixture, LinkCreatesSiblingCopy) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  Region* fast = dm_.allocate(sim::kFast, 1024);
  dm_.link(*slow, *fast);
  EXPECT_EQ(fast->parent(), obj);
  EXPECT_EQ(dm_.getlinked(*slow, sim::kFast), fast);
  EXPECT_EQ(dm_.getlinked(*fast, sim::kSlow), slow);
  EXPECT_EQ(obj->region_count(), 2u);
  // Primary unchanged by linking.
  EXPECT_EQ(dm_.getprimary(*obj), slow);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, LinkRejectsSecondRegionOnSameDevice) {
  Object* obj = dm_.create_object(1024);
  Region* s1 = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *s1);
  Region* s2 = dm_.allocate(sim::kSlow, 1024);
  EXPECT_THROW(dm_.link(*s1, *s2), UsageError);
  dm_.free(s2);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, LinkRejectsTwoOrphans) {
  Region* a = dm_.allocate(sim::kSlow, 1024);
  Region* b = dm_.allocate(sim::kFast, 1024);
  EXPECT_THROW(dm_.link(*a, *b), UsageError);
  dm_.free(a);
  dm_.free(b);
}

TEST_F(DmFixture, UnlinkDetachesSecondary) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  Region* fast = dm_.allocate(sim::kFast, 1024);
  dm_.link(*slow, *fast);
  dm_.unlink(*fast);
  EXPECT_EQ(fast->parent(), nullptr);
  EXPECT_EQ(obj->region_count(), 1u);
  dm_.free(fast);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, UnlinkPrimaryRejected) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  EXPECT_THROW(dm_.unlink(*slow), UsageError);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, QueryFunctions) {
  Object* obj = dm_.create_object(1024);
  Region* r = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *r);
  EXPECT_EQ(dm_.size_of(*r), 1024u);
  EXPECT_TRUE(dm_.in(*r, sim::kSlow));
  EXPECT_FALSE(dm_.in(*r, sim::kFast));
  EXPECT_EQ(dm_.parent(*r), obj);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, DirtyTracking) {
  Region* r = dm_.allocate(sim::kFast, 64);
  EXPECT_FALSE(dm_.isdirty(*r));
  dm_.markdirty(*r);
  EXPECT_TRUE(dm_.isdirty(*r));
  dm_.markclean(*r);
  EXPECT_FALSE(dm_.isdirty(*r));
  dm_.free(r);
}

TEST_F(DmFixture, PinPreventsPrimaryChange) {
  Object* obj = dm_.create_object(1024);
  Region* slow = dm_.allocate(sim::kSlow, 1024);
  dm_.setprimary(*obj, *slow);
  dm_.pin(*obj);
  Region* fast = dm_.allocate(sim::kFast, 1024);
  dm_.link(*slow, *fast);
  EXPECT_THROW(dm_.setprimary(*obj, *fast), UsageError);
  EXPECT_THROW(dm_.destroy_object(obj), UsageError);
  dm_.unpin(*obj);
  dm_.setprimary(*obj, *fast);
  EXPECT_EQ(dm_.getprimary(*obj), fast);
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, PinCountsNest) {
  Object* obj = dm_.create_object(64);
  dm_.pin(*obj);
  dm_.pin(*obj);
  dm_.unpin(*obj);
  EXPECT_TRUE(obj->pinned());
  dm_.unpin(*obj);
  EXPECT_FALSE(obj->pinned());
  dm_.destroy_object(obj);
}

TEST_F(DmFixture, UnpinWithoutPinThrows) {
  Object* obj = dm_.create_object(64);
  EXPECT_THROW(dm_.unpin(*obj), InternalError);
  dm_.destroy_object(obj);
}

}  // namespace
}  // namespace ca::dm
