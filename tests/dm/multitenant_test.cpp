// Multi-tenant DataManager semantics and plain-thread concurrency.
//
// The serial half pins down the tenant API contract: registration limits,
// per-tenant accounting (resident bytes, allocations/frees, eviction and
// stall counters), the quota admission bound with its denial counting and
// rollback, tenant-match enforcement on link/setprimary, and eviction
// isolation.  The concurrent half runs K tenants against one shared
// manager from real std::threads -- no explorer, so the same binary
// stress-tests the fine-grained locking under TSan and in release builds.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "audit/audit.hpp"
#include "dm/data_manager.hpp"
#include "race/sync.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca {
namespace {

class MultitenantFixture : public ::testing::Test {
 protected:
  MultitenantFixture()
      : platform_(sim::Platform::cascade_lake_scaled(4 * util::MiB,
                                                     16 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(MultitenantFixture, RegistrationAssignsSequentialIdsUpToTheCap) {
  EXPECT_EQ(dm_.tenant_count(), 1u);  // the default tenant
  std::vector<dm::TenantId> ids;
  for (std::size_t i = 1; i < dm::kMaxTenants; ++i) {
    ids.push_back(dm_.register_tenant("tenant-" + std::to_string(i)));
    EXPECT_EQ(ids.back().value, i);
  }
  EXPECT_EQ(dm_.tenant_count(), dm::kMaxTenants);
  EXPECT_THROW(dm_.register_tenant("one-too-many"), UsageError);
}

TEST_F(MultitenantFixture, ResidentBytesAreChargedPerTenantAndDevice) {
  const dm::TenantId t = dm_.register_tenant("charged");
  dm::Region* fast = dm_.allocate(sim::kFast, 4096, t);
  dm::Region* slow = dm_.allocate(sim::kSlow, 10000, t);
  ASSERT_NE(fast, nullptr);
  ASSERT_NE(slow, nullptr);
  const auto stats = dm_.tenant_stats(t);
  EXPECT_EQ(stats.resident[sim::kFast.value], 4096u);
  // Charged at heap-aligned size, matching what the allocator carved.
  EXPECT_EQ(stats.resident[sim::kSlow.value],
            util::align_up(std::size_t{10000},
                           dm_.allocator(sim::kSlow).alignment()));
  EXPECT_EQ(stats.allocations, 2u);
  // The default tenant is not charged for another tenant's bytes.
  EXPECT_EQ(dm_.tenant_stats(dm::TenantId{}).resident[sim::kFast.value], 0u);
  // device_stats exports the same split.
  EXPECT_EQ(dm_.device_stats(sim::kFast).tenant_resident[t.value], 4096u);
  dm_.free(fast);
  dm_.free(slow);
  const auto after = dm_.tenant_stats(t);
  EXPECT_EQ(after.resident[sim::kFast.value], 0u);
  EXPECT_EQ(after.resident[sim::kSlow.value], 0u);
  EXPECT_EQ(after.frees, 2u);
}

TEST_F(MultitenantFixture, QuotaDeniesAdmissionAndRollsBackTheReserve) {
  const dm::TenantId t = dm_.register_tenant("capped");
  dm_.set_tenant_quota(t, sim::kFast, 8192);
  EXPECT_EQ(dm_.tenant_quota(t, sim::kFast), 8192u);
  dm::Region* a = dm_.allocate(sim::kFast, 4096, t);
  dm::Region* b = dm_.allocate(sim::kFast, 4096, t);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // At the cap: the next byte is refused and counted, and the failed
  // reserve is rolled back (resident unchanged).
  EXPECT_EQ(dm_.allocate(sim::kFast, 64, t), nullptr);
  auto stats = dm_.tenant_stats(t);
  EXPECT_EQ(stats.quota_denials, 1u);
  EXPECT_EQ(stats.resident[sim::kFast.value], 8192u);
  // Other tenants and other devices are unaffected by this tenant's cap.
  dm::Region* other = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(other, nullptr);
  dm::Region* spill = dm_.allocate(sim::kSlow, 4096, t);
  ASSERT_NE(spill, nullptr);
  // Freeing drains the accounting and re-admits.
  dm_.free(a);
  dm::Region* again = dm_.allocate(sim::kFast, 4096, t);
  EXPECT_NE(again, nullptr);
  dm_.free(other);
  dm_.free(spill);
  dm_.free(b);
  dm_.free(again);
}

TEST_F(MultitenantFixture, QuotaCannotShrinkBelowResidency) {
  const dm::TenantId t = dm_.register_tenant("shrink");
  dm::Region* r = dm_.allocate(sim::kFast, 8192, t);
  ASSERT_NE(r, nullptr);
  EXPECT_THROW(dm_.set_tenant_quota(t, sim::kFast, 4096), InternalError);
  dm_.set_tenant_quota(t, sim::kFast, 8192);  // at residency: fine
  dm_.free(r);
  dm_.set_tenant_quota(t, sim::kFast, 4096);  // drained: fine
}

TEST_F(MultitenantFixture, ObjectsInheritTenantAndRejectForeignRegions) {
  const dm::TenantId mine = dm_.register_tenant("mine");
  const dm::TenantId theirs = dm_.register_tenant("theirs");
  dm::Object* obj = dm_.create_object(4096, "obj", mine);
  EXPECT_EQ(obj->tenant(), mine);
  dm::Region* own = dm_.allocate(sim::kFast, 4096, mine);
  dm::Region* foreign = dm_.allocate(sim::kFast, 4096, theirs);
  dm_.setprimary(*obj, *own);
  EXPECT_THROW(dm_.link(*own, *foreign), UsageError);
  dm_.free(foreign);
  dm_.destroy_object(obj);
}

TEST_F(MultitenantFixture, EvictfromRefusesForeignVictimsWithoutCallback) {
  const dm::TenantId owner = dm_.register_tenant("owner");
  const dm::TenantId raider = dm_.register_tenant("raider");
  dm::Region* held = dm_.allocate(sim::kFast, 64 * util::KiB, owner);
  ASSERT_NE(held, nullptr);
  std::size_t callbacks = 0;
  // The whole window is foreign: the callback must never run, and the
  // refused block is skipped (the rest of the tier is free, so the call
  // still finds a window and succeeds).
  EXPECT_TRUE(dm_.evictfrom(
      sim::kFast, 0, 64 * util::KiB,
      [&](dm::Region&) {
        ++callbacks;
        return true;
      },
      raider));
  EXPECT_EQ(callbacks, 0u);
  EXPECT_EQ(dm_.tenant_stats(raider).evictions_caused, 0u);
  EXPECT_EQ(dm_.tenant_stats(owner).evictions_suffered, 0u);
  // Self-eviction still works and is counted on both sides of the ledger.
  EXPECT_TRUE(dm_.evictfrom(
      sim::kFast, 0, 64 * util::KiB,
      [&](dm::Region& r) {
        dm_.free(&r);
        return true;
      },
      owner));
  EXPECT_EQ(dm_.tenant_stats(owner).evictions_caused, 1u);
  EXPECT_EQ(dm_.tenant_stats(owner).evictions_suffered, 1u);
}

TEST_F(MultitenantFixture, ForeignVictimRefusalsAreCountedOnTheRequester) {
  const dm::TenantId owner = dm_.register_tenant("owner");
  const dm::TenantId raider = dm_.register_tenant("raider");
  dm::Region* held = dm_.allocate(sim::kFast, 64 * util::KiB, owner);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(dm_.tenant_stats(raider).evictions_refused, 0u);
  // The raider's scan bounces off the owner's live block: one refusal,
  // charged to the raider (the starving side -- the observability this
  // counter exists for), none to the owner.
  EXPECT_TRUE(dm_.evictfrom(
      sim::kFast, 0, 64 * util::KiB, [](dm::Region&) { return true; },
      raider));
  EXPECT_EQ(dm_.tenant_stats(raider).evictions_refused, 1u);
  EXPECT_EQ(dm_.tenant_stats(owner).evictions_refused, 0u);
  // Self-reclaim is isolation-clean: no refusal lands on the owner.
  EXPECT_TRUE(dm_.evictfrom(
      sim::kFast, 0, 64 * util::KiB,
      [&](dm::Region& r) {
        dm_.free(&r);
        return true;
      },
      owner));
  EXPECT_EQ(dm_.tenant_stats(owner).evictions_refused, 0u);
  // With the window drained, another raider scan adds nothing.
  EXPECT_TRUE(dm_.evictfrom(
      sim::kFast, 0, 64 * util::KiB, [](dm::Region&) { return true; },
      raider));
  EXPECT_EQ(dm_.tenant_stats(raider).evictions_refused, 1u);
}

TEST_F(MultitenantFixture, StallTimeIsChargedToTheStallingTenant) {
  const dm::TenantId t = dm_.register_tenant("staller");
  dm::Region* src = dm_.allocate(sim::kSlow, 256 * util::KiB, t);
  dm::Region* dst = dm_.allocate(sim::kFast, 256 * util::KiB, t);
  ASSERT_NE(src, nullptr);
  ASSERT_NE(dst, nullptr);
  dm_.copyto_async(*dst, *src);
  dm_.wait_ready(*dst);  // modeled completion is in the future: stalls
  const auto stats = dm_.tenant_stats(t);
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_GT(stats.stall_seconds, 0.0);
  EXPECT_EQ(dm_.tenant_stats(dm::TenantId{}).stalls, 0u);
  dm_.free(dst);
  dm_.free(src);
}

// --- plain-thread concurrency (TSan-able; no explorer) ----------------------

TEST_F(MultitenantFixture, ConcurrentTenantsKeepTheBooksBalanced) {
  constexpr std::size_t kTenants = 4;
  constexpr std::size_t kIterations = 25;
  std::vector<dm::TenantId> ids;
  for (std::size_t t = 0; t < kTenants; ++t) {
    ids.push_back(dm_.register_tenant("worker-" + std::to_string(t)));
    // A quota sized so concurrent working sets always fit: the knob is on
    // without introducing scheduling-dependent denials.
    dm_.set_tenant_quota(ids.back(), sim::kFast, 512 * util::KiB);
  }

  const std::size_t mark = sync::adoption_mark();
  std::vector<std::thread> threads;
  std::vector<sync::spawn_token> tokens;
  for (std::size_t t = 0; t < kTenants; ++t) {
    const sync::spawn_token token = sync::before_spawn();
    tokens.push_back(token);
    threads.emplace_back([this, tenant = ids[t], token] {
      sync::task_scope scope(token);
      for (std::size_t i = 0; i < kIterations; ++i) {
        dm::Object* obj =
            dm_.create_object(16 * util::KiB, "scratch", tenant);
        dm::Region* slow =
            dm_.allocate(sim::kSlow, 16 * util::KiB, tenant);
        ASSERT_NE(slow, nullptr);
        dm_.setprimary(*obj, *slow);
        std::memset(slow->data(), 0x42, slow->size());
        dm::Region* fast =
            dm_.allocate(sim::kFast, 16 * util::KiB, tenant);
        ASSERT_NE(fast, nullptr);
        dm_.link(*slow, *fast);
        dm_.copyto(*fast, *slow);
        dm_.setprimary(*obj, *fast);
        // A self-only eviction pass: foreign blocks are refused, own
        // blocks relocate through unlink+free, all concurrent.
        if (i % 5 == 4) {
          (void)dm_.evictfrom(
              sim::kFast, 0, 16 * util::KiB,
              [&](dm::Region& r) {
                if (&r == fast) return false;  // keep the live working set
                dm_.free(&r);
                return true;
              },
              tenant);
        }
        (void)dm_.tenant_stats(tenant);
        (void)dm_.async_stats();
        dm_.destroy_object(obj);  // releases both regions
      }
    });
  }
  // Under a CA_RACE build these helpers hand the threads to the scheduler;
  // in plain and TSan builds they are no-ops and this is ordinary
  // std::thread concurrency.
  sync::await_adoptions(mark + kTenants);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sync::join_thread(threads[t], tokens[t]);
  }

  for (std::size_t t = 0; t < kTenants; ++t) {
    const auto stats = dm_.tenant_stats(ids[t]);
    EXPECT_EQ(stats.resident[sim::kFast.value], 0u)
        << "tenant " << t << " leaked fast-tier accounting";
    EXPECT_EQ(stats.resident[sim::kSlow.value], 0u)
        << "tenant " << t << " leaked slow-tier accounting";
    EXPECT_EQ(stats.allocations, stats.frees);
    EXPECT_GE(stats.allocations, 2 * kIterations);
    EXPECT_EQ(stats.quota_denials, 0u);
  }
  EXPECT_EQ(dm_.live_objects(), 0u);
  EXPECT_EQ(dm_.live_regions(), 0u);
  dm_.check_invariants();
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(MultitenantFixture, ConcurrentRegistrationStaysWithinTheCap) {
  constexpr std::size_t kThreads = 4;
  // Enough attempts per thread to oversubscribe the cap no matter its
  // value (the fixture's own tenant already holds one slot).
  constexpr std::size_t kAttempts = dm::kMaxTenants / kThreads + 2;
  const std::size_t mark = sync::adoption_mark();
  std::vector<std::thread> threads;
  std::vector<sync::spawn_token> tokens;
  sync::atomic<std::size_t> registered{0};
  sync::atomic<std::size_t> refused{0};
  for (std::size_t t = 0; t < kThreads; ++t) {
    const sync::spawn_token token = sync::before_spawn();
    tokens.push_back(token);
    threads.emplace_back([this, &registered, &refused, token] {
      sync::task_scope scope(token);
      for (std::size_t i = 0; i < kAttempts; ++i) {
        try {
          (void)dm_.register_tenant("racer");
          registered.fetch_add(1);
        } catch (const UsageError&) {
          refused.fetch_add(1);
        }
      }
    });
  }
  sync::await_adoptions(mark + kThreads);
  for (std::size_t t = 0; t < threads.size(); ++t) {
    sync::join_thread(threads[t], tokens[t]);
  }
  // More attempts than free slots: exactly the cap's worth register, the
  // rest are refused.
  EXPECT_EQ(registered.load(), dm::kMaxTenants - 1);
  EXPECT_EQ(refused.load(), kThreads * kAttempts - (dm::kMaxTenants - 1));
  EXPECT_EQ(dm_.tenant_count(), dm::kMaxTenants);
}

}  // namespace
}  // namespace ca
