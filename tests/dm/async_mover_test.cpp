// Tests for the asynchronous mover (the paper's §V-c future-work item):
// modeled overlap of data movement with execution, remainder stalls at
// first use, channel scheduling, and data correctness.
#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "util/align.hpp"

namespace ca::dm {
namespace {

class AsyncFixture : public ::testing::Test {
 protected:
  AsyncFixture()
      : platform_(sim::Platform::cascade_lake_scaled(16 * util::MiB,
                                                     64 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

// Same fixture with a single mover channel: the fully-serialized pre-channel
// behaviour kept as the ablation baseline.
class SerializedAsyncFixture : public ::testing::Test {
 protected:
  SerializedAsyncFixture()
      : platform_([] {
          auto p = sim::Platform::cascade_lake_scaled(16 * util::MiB,
                                                      64 * util::MiB);
          p.mover_channels = 1;
          return p;
        }()),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(AsyncFixture, BytesMoveInBackgroundClockDoesNot) {
  Region* src = dm_.allocate(sim::kSlow, 4 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 4 * util::MiB);
  std::memset(src->data(), 0x5C, src->size());
  const double t0 = clock_.now();
  const double done = dm_.copyto_async(*dst, *src);
  // Scheduling never advances simulated time.
  EXPECT_DOUBLE_EQ(clock_.now(), t0);
  EXPECT_GT(done, t0);
  EXPECT_DOUBLE_EQ(dst->ready_at(), done);
  // Once the real copy is joined the bytes are there -- still at t0.
  dm_.drain_transfers();
  EXPECT_EQ(std::to_integer<unsigned>(dst->data()[123456]), 0x5Cu);
  EXPECT_DOUBLE_EQ(clock_.now(), t0);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncFixture, AsyncCompletionMatchesSyncDuration) {
  Region* src = dm_.allocate(sim::kSlow, 4 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 4 * util::MiB);
  const double expected = dm_.engine().modeled_copy_time(
      src->size(), sim::kSlow, sim::kFast, true);
  const double done = dm_.copyto_async(*dst, *src);
  EXPECT_DOUBLE_EQ(done - clock_.now(), expected);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncFixture, WaitReadyStallsForRemainderOnly) {
  Region* src = dm_.allocate(sim::kSlow, 4 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 4 * util::MiB);
  const double done = dm_.copyto_async(*dst, *src);
  // Overlap: 60% of the transfer time passes doing "compute".
  const double duration = done - clock_.now();
  clock_.advance(0.6 * duration, sim::TimeCategory::kCompute);
  const double before_wait = clock_.now();
  dm_.wait_ready(*dst);
  EXPECT_NEAR(clock_.now() - before_wait, 0.4 * duration, 1e-9);
  EXPECT_DOUBLE_EQ(clock_.now(), done);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncFixture, NoStallWhenTransferAlreadyFinished) {
  Region* src = dm_.allocate(sim::kSlow, 1 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 1 * util::MiB);
  const double done = dm_.copyto_async(*dst, *src);
  clock_.advance(2.0 * (done - clock_.now()), sim::TimeCategory::kCompute);
  const double before = clock_.now();
  dm_.wait_ready(*dst);
  EXPECT_DOUBLE_EQ(clock_.now(), before);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncFixture, WaitOnUntouchedRegionIsFree) {
  Region* r = dm_.allocate(sim::kFast, 1 * util::MiB);
  const double before = clock_.now();
  dm_.wait_ready(*r);
  EXPECT_DOUBLE_EQ(clock_.now(), before);
  dm_.free(r);
}

TEST_F(AsyncFixture, ChannelsOverlapSameDirectionTransfers) {
  // cascade_lake default: 4 channels, 2 per direction.  Two back-to-back
  // fetches land on distinct channels and complete at the same time; a
  // third queues behind the first.
  ASSERT_EQ(dm_.engine().channels_for(sim::kSlow, sim::kFast), 2u);
  Region* s1 = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* s2 = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* s3 = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* d1 = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* d2 = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* d3 = dm_.allocate(sim::kFast, 2 * util::MiB);
  const double done1 = dm_.copyto_async(*d1, *s1);
  const double done2 = dm_.copyto_async(*d2, *s2);
  const double done3 = dm_.copyto_async(*d3, *s3);
  EXPECT_DOUBLE_EQ(done2, done1);
  EXPECT_NEAR(done3 - done1, done1 - clock_.now(), 1e-9);
  EXPECT_DOUBLE_EQ(dm_.mover_busy_until(), done3);
  for (auto* r : {s1, s2, s3, d1, d2, d3}) dm_.free(r);
}

TEST_F(AsyncFixture, OppositeDirectionsUseIndependentChannels) {
  // A writeback never queues behind a fetch: each direction owns its own
  // half of the channels.
  Region* sf = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* df = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* sw = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* dw = dm_.allocate(sim::kSlow, 2 * util::MiB);
  const double fetch_done = dm_.copyto_async(*df, *sf);
  const double wb_done = dm_.copyto_async(*dw, *sw);
  const double wb_alone = dm_.engine().modeled_copy_time(
      sw->size(), sim::kFast, sim::kSlow, true);
  // The writeback starts at now, not behind the fetch.
  EXPECT_NEAR(wb_done - clock_.now(), wb_alone, 1e-9);
  EXPECT_NE(df->pending_fill().channel(), dw->pending_fill().channel());
  (void)fetch_done;
  for (auto* r : {sf, df, sw, dw}) dm_.free(r);
}

TEST_F(SerializedAsyncFixture, SingleChannelSerializesBackToBackTransfers) {
  Region* s1 = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* s2 = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* d1 = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* d2 = dm_.allocate(sim::kFast, 2 * util::MiB);
  const double done1 = dm_.copyto_async(*d1, *s1);
  const double done2 = dm_.copyto_async(*d2, *s2);
  // The second transfer queues behind the first on the single mover.
  EXPECT_NEAR(done2 - done1, done1 - clock_.now(), 1e-9);
  EXPECT_DOUBLE_EQ(dm_.mover_busy_until(), done2);
  for (auto* r : {s1, s2, d1, d2}) dm_.free(r);
}

TEST_F(AsyncFixture, AsyncRecordsTrafficImmediately) {
  Region* src = dm_.allocate(sim::kSlow, 1 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 1 * util::MiB);
  dm_.copyto_async(*dst, *src);
  EXPECT_EQ(counters_.device(sim::kSlow).bytes_read, 1 * util::MiB);
  EXPECT_EQ(counters_.device(sim::kFast).bytes_written, 1 * util::MiB);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncFixture, AsyncCleansDirtyBits) {
  Object* obj = dm_.create_object(1 * util::MiB);
  Region* slow = dm_.allocate(sim::kSlow, obj->size());
  dm_.setprimary(*obj, *slow);
  dm_.markdirty(*slow);
  Region* fast = dm_.allocate(sim::kFast, obj->size());
  dm_.link(*slow, *fast);
  dm_.copyto_async(*fast, *slow);
  EXPECT_FALSE(fast->dirty());
  EXPECT_FALSE(slow->dirty());
  dm_.destroy_object(obj);
}

}  // namespace
}  // namespace ca::dm
