#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::dm {
namespace {

class DefragFixture : public ::testing::Test {
 protected:
  DefragFixture()
      : platform_(sim::Platform::cascade_lake_scaled(512 * util::KiB,
                                                     1 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  Object* make_object(sim::DeviceId dev, std::size_t size,
                      unsigned char fill) {
    Object* obj = dm_.create_object(size);
    Region* r = dm_.allocate(dev, size);
    EXPECT_NE(r, nullptr);
    std::memset(r->data(), fill, size);
    dm_.setprimary(*obj, *r);
    return obj;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(DefragFixture, CompactsFragmentedHeap) {
  // Create A B C D, free B and D: heap has two holes.
  Object* a = make_object(sim::kFast, 64 * util::KiB, 0xAA);
  Object* b = make_object(sim::kFast, 64 * util::KiB, 0xBB);
  Object* c = make_object(sim::kFast, 64 * util::KiB, 0xCC);
  Object* d = make_object(sim::kFast, 64 * util::KiB, 0xDD);
  dm_.destroy_object(b);
  dm_.destroy_object(d);

  auto before = dm_.device_stats(sim::kFast);
  EXPECT_LT(before.largest_free_block, before.free_bytes);

  dm_.defragment(sim::kFast);

  const auto after = dm_.device_stats(sim::kFast);
  EXPECT_EQ(after.largest_free_block, after.free_bytes);
  EXPECT_DOUBLE_EQ(after.fragmentation, 0.0);
  dm_.check_invariants();

  // Contents preserved and regions updated.
  Region* ra = dm_.getprimary(*a);
  Region* rc = dm_.getprimary(*c);
  for (std::size_t i = 0; i < 64 * util::KiB; i += 4096) {
    EXPECT_EQ(std::to_integer<unsigned>(ra->data()[i]), 0xAAu);
    EXPECT_EQ(std::to_integer<unsigned>(rc->data()[i]), 0xCCu);
  }
  // C moved down into B's old slot.
  EXPECT_EQ(rc->offset(), 64 * util::KiB);
  dm_.destroy_object(a);
  dm_.destroy_object(c);
}

TEST_F(DefragFixture, EmptyHeapIsNoop) {
  dm_.defragment(sim::kFast);
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);
  dm_.check_invariants();
}

TEST_F(DefragFixture, AlreadyCompactHeapMovesNothing) {
  Object* a = make_object(sim::kFast, 64 * util::KiB, 0x11);
  const auto offset_before = dm_.getprimary(*a)->offset();
  dm_.defragment(sim::kFast);
  EXPECT_EQ(dm_.getprimary(*a)->offset(), offset_before);
  EXPECT_DOUBLE_EQ(clock_.now(), 0.0);  // nothing moved, nothing charged
  dm_.destroy_object(a);
}

TEST_F(DefragFixture, ChargesTimeWhenDataMoves) {
  Object* a = make_object(sim::kFast, 64 * util::KiB, 0x11);
  Object* b = make_object(sim::kFast, 64 * util::KiB, 0x22);
  dm_.destroy_object(a);
  dm_.defragment(sim::kFast);
  EXPECT_GT(clock_.spent(sim::TimeCategory::kOther), 0.0);
  EXPECT_EQ(dm_.getprimary(*b)->offset(), 0u);
  dm_.destroy_object(b);
}

TEST_F(DefragFixture, PinnedRegionBlocksDefrag) {
  Object* a = make_object(sim::kFast, 64 * util::KiB, 0x11);
  dm_.pin(*a);
  EXPECT_THROW(dm_.defragment(sim::kFast), UsageError);
  dm_.unpin(*a);
  dm_.defragment(sim::kFast);
  dm_.destroy_object(a);
}

TEST_F(DefragFixture, EnablesLargeAllocationAfterFragmentation) {
  // Fragment the heap so a half-heap allocation fails, then defragment.
  std::vector<Object*> objs;
  for (int i = 0; i < 8; ++i) {
    objs.push_back(make_object(sim::kFast, 64 * util::KiB,
                               static_cast<unsigned char>(i)));
  }
  for (int i = 0; i < 8; i += 2) {
    dm_.destroy_object(objs[i]);
  }
  EXPECT_EQ(dm_.allocate(sim::kFast, 256 * util::KiB), nullptr);
  dm_.defragment(sim::kFast);
  Region* big = dm_.allocate(sim::kFast, 256 * util::KiB);
  EXPECT_NE(big, nullptr);
  dm_.free(big);
  for (int i = 1; i < 8; i += 2) dm_.destroy_object(objs[i]);
}

TEST_F(DefragFixture, LinkedSiblingSurvivesDefrag) {
  Object* obj = dm_.create_object(64 * util::KiB);
  Region* slow = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm_.setprimary(*obj, *slow);
  Object* filler = make_object(sim::kFast, 64 * util::KiB, 0x33);
  Region* fast = dm_.allocate(sim::kFast, 64 * util::KiB);
  std::memset(fast->data(), 0x77, 64 * util::KiB);
  dm_.link(*slow, *fast);
  dm_.setprimary(*obj, *fast);
  dm_.destroy_object(filler);  // hole before obj's fast region

  dm_.defragment(sim::kFast);
  Region* moved = dm_.getprimary(*obj);
  EXPECT_EQ(moved->offset(), 0u);
  EXPECT_EQ(dm_.getlinked(*moved, sim::kSlow), slow);
  EXPECT_EQ(std::to_integer<unsigned>(moved->data()[0]), 0x77u);
  dm_.destroy_object(obj);
}

}  // namespace
}  // namespace ca::dm
