// Property-based test of the data manager: a random interleaving of the
// full data-management API (create/destroy objects, allocate/free regions,
// link/unlink, setprimary, copyto, evict-style relocations, defragment)
// must preserve every cross-structure invariant and never corrupt data.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/rng.hpp"

namespace ca::dm {
namespace {

struct Param {
  std::uint64_t seed;
  std::size_t max_size;
};

class DmProperty : public ::testing::TestWithParam<Param> {};

TEST_P(DmProperty, RandomApiWorkloadKeepsInvariantsAndData) {
  const auto param = GetParam();
  util::Xoshiro256 rng(param.seed);
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  DataManager dm(platform, clock, counters);

  struct Live {
    Object* object;
    unsigned char fill;  // every byte of the object holds this value
  };
  std::vector<Live> live;

  auto check_data = [&](const Live& l) {
    const Region* r = dm.getprimary(*l.object);
    ASSERT_NE(r, nullptr);
    for (std::size_t i = 0; i < l.object->size(); i += 977) {
      ASSERT_EQ(std::to_integer<unsigned>(r->data()[i]), l.fill)
          << "corruption in " << l.object->name();
    }
  };

  for (int step = 0; step < 600; ++step) {
    const double dice = rng.uniform();
    if (live.empty() || dice < 0.30) {
      // Create an object with a primary on a random device.
      const std::size_t size =
          64 + rng.bounded(param.max_size);
      const sim::DeviceId dev = rng.uniform() < 0.3 ? sim::kFast : sim::kSlow;
      Region* r = dm.allocate(dev, size);
      if (r == nullptr) continue;  // tier full: fine
      Object* obj = dm.create_object(size, "o" + std::to_string(step));
      dm.setprimary(*obj, *r);
      const auto fill = static_cast<unsigned char>(rng.bounded(256));
      std::memset(r->data(), fill, size);
      dm.markdirty(*r);
      live.push_back({obj, fill});
    } else if (dice < 0.45) {
      // Destroy a random object.
      const std::size_t i = rng.bounded(live.size());
      dm.destroy_object(live[i].object);
      live[i] = live.back();
      live.pop_back();
    } else if (dice < 0.70) {
      // Relocate (Listing-1 style evict or prefetch) a random object.
      Live& l = live[rng.bounded(live.size())];
      Region* x = dm.getprimary(*l.object);
      const sim::DeviceId target =
          dm.in(*x, sim::kFast) ? sim::kSlow : sim::kFast;
      Region* y = dm.getlinked(*x, target);
      const bool allocated = y == nullptr;
      if (allocated) {
        y = dm.allocate(target, l.object->size());
        if (y == nullptr) continue;
      }
      if (dm.isdirty(*x) || allocated) dm.copyto(*y, *x);
      dm.setprimary(*l.object, *y);
      if (!allocated) dm.unlink(*x);
      dm.free(x);
    } else if (dice < 0.82) {
      // Link a secondary copy on the other device (if absent).
      Live& l = live[rng.bounded(live.size())];
      Region* x = dm.getprimary(*l.object);
      const sim::DeviceId other =
          dm.in(*x, sim::kFast) ? sim::kSlow : sim::kFast;
      if (dm.getlinked(*x, other) != nullptr) continue;
      Region* y = dm.allocate(other, l.object->size());
      if (y == nullptr) continue;
      dm.copyto(*y, *x);
      dm.link(*x, *y);
    } else if (dice < 0.90) {
      // Rewrite an object's contents through its primary.
      Live& l = live[rng.bounded(live.size())];
      Region* r = dm.getprimary(*l.object);
      l.fill = static_cast<unsigned char>(rng.bounded(256));
      std::memset(r->data(), l.fill, l.object->size());
      dm.markdirty(*r);
    } else {
      // Defragment a random device.
      dm.defragment(rng.uniform() < 0.5 ? sim::kFast : sim::kSlow);
    }

    if (step % 60 == 0) {
      dm.check_invariants();
      for (const auto& l : live) check_data(l);
    }
  }

  dm.check_invariants();
  for (const auto& l : live) check_data(l);
  for (const auto& l : live) dm.destroy_object(l.object);
  EXPECT_EQ(dm.live_objects(), 0u);
  EXPECT_EQ(dm.live_regions(), 0u);
  EXPECT_EQ(dm.resident_bytes(), 0u);
  dm.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, DmProperty,
    ::testing::Values(Param{11, 8 * 1024}, Param{22, 64 * 1024},
                      Param{33, 256 * 1024}, Param{44, 16 * 1024},
                      Param{55, 128 * 1024}, Param{66, 512 * 1024}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "seed" + std::to_string(info.param.seed) + "_max" +
             std::to_string(info.param.max_size);
    });

}  // namespace
}  // namespace ca::dm
