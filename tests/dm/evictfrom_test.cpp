// Tests for DataManager::evictfrom -- the contiguous-window reclamation
// primitive behind the paper's Listing 2 forced prefetch.
#include <gtest/gtest.h>

#include "dm/data_manager.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::dm {
namespace {

class EvictFromFixture : public ::testing::Test {
 protected:
  EvictFromFixture()
      : platform_(sim::Platform::cascade_lake_scaled(256 * util::KiB,
                                                     1 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  /// Simple evictor: move the region's object to slow and free the fast
  /// copy (a minimal Listing-1).
  bool relocate_to_slow(Region& region) {
    Object* obj = dm_.parent(region);
    if (obj == nullptr || obj->pinned()) return false;
    Region* slow = dm_.allocate(sim::kSlow, obj->size());
    if (slow == nullptr) return false;
    dm_.copyto(*slow, region);
    dm_.setprimary(*obj, *slow);
    dm_.free(&region);
    return true;
  }

  Object* make_fast_object(std::size_t size) {
    Object* obj = dm_.create_object(size);
    Region* r = dm_.allocate(sim::kFast, size);
    EXPECT_NE(r, nullptr);
    dm_.setprimary(*obj, *r);
    return obj;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(EvictFromFixture, FreeWindowNeedsNoEvictions) {
  int calls = 0;
  EXPECT_TRUE(dm_.evictfrom(sim::kFast, 0, 64 * util::KiB, [&](Region&) {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 0);
}

TEST_F(EvictFromFixture, EvictsExactlyTheBlockingRegions) {
  // Fill fast memory with 4 x 64 KiB objects.
  std::vector<Object*> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(make_fast_object(64 * util::KiB));
  ASSERT_EQ(dm_.free_bytes(sim::kFast), 0u);

  // Reclaiming 128 KiB from offset 0 must displace the first two objects
  // and leave the last two untouched.
  int evicted = 0;
  EXPECT_TRUE(dm_.evictfrom(sim::kFast, 0, 128 * util::KiB, [&](Region& r) {
    ++evicted;
    return relocate_to_slow(r);
  }));
  EXPECT_EQ(evicted, 2);
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*objs[0]), sim::kSlow));
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*objs[1]), sim::kSlow));
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*objs[2]), sim::kFast));
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*objs[3]), sim::kFast));
  // The window can now be allocated.
  Region* r = dm_.allocate(sim::kFast, 128 * util::KiB);
  EXPECT_NE(r, nullptr);
  dm_.free(r);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(EvictFromFixture, SkipsRefusedBlocksAndFindsWindowElsewhere) {
  auto* pinned_obj = make_fast_object(64 * util::KiB);
  auto* movable1 = make_fast_object(64 * util::KiB);
  auto* movable2 = make_fast_object(64 * util::KiB);
  dm_.pin(*pinned_obj);

  int refusals = 0;
  EXPECT_TRUE(dm_.evictfrom(sim::kFast, 0, 128 * util::KiB, [&](Region& r) {
    if (dm_.parent(r)->pinned()) {
      ++refusals;
      return false;
    }
    return relocate_to_slow(r);
  }));
  EXPECT_GE(refusals, 1);
  // The pinned object stayed in fast memory.
  EXPECT_TRUE(dm_.in(*dm_.getprimary(*pinned_obj), sim::kFast));
  Region* r = dm_.allocate(sim::kFast, 128 * util::KiB);
  EXPECT_NE(r, nullptr);
  dm_.free(r);
  dm_.unpin(*pinned_obj);
  for (auto* o : {pinned_obj, movable1, movable2}) dm_.destroy_object(o);
}

TEST_F(EvictFromFixture, FailsWhenEverythingRefuses) {
  std::vector<Object*> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(make_fast_object(64 * util::KiB));
  EXPECT_FALSE(dm_.evictfrom(sim::kFast, 0, 128 * util::KiB,
                             [&](Region&) { return false; }));
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(EvictFromFixture, RequestLargerThanHeapFails) {
  EXPECT_FALSE(dm_.evictfrom(sim::kFast, 0, 512 * util::KiB,
                             [&](Region&) { return true; }));
}

TEST_F(EvictFromFixture, WrapsAroundFromHighStartOffset) {
  std::vector<Object*> objs;
  for (int i = 0; i < 4; ++i) objs.push_back(make_fast_object(64 * util::KiB));
  // Start near the end of the heap: a 128 KiB window starting there is
  // clamped/wrapped, and evictions still produce a window.
  int evicted = 0;
  EXPECT_TRUE(dm_.evictfrom(sim::kFast, 240 * util::KiB, 128 * util::KiB,
                            [&](Region& r) {
                              ++evicted;
                              return relocate_to_slow(r);
                            }));
  EXPECT_GE(evicted, 2);
  Region* r = dm_.allocate(sim::kFast, 128 * util::KiB);
  EXPECT_NE(r, nullptr);
  dm_.free(r);
  for (auto* o : objs) dm_.destroy_object(o);
}

TEST_F(EvictFromFixture, LyingCallbackIsDetected) {
  auto* obj = make_fast_object(64 * util::KiB);
  std::vector<Object*> fillers;
  for (int i = 0; i < 3; ++i) fillers.push_back(make_fast_object(64 * util::KiB));
  EXPECT_THROW(dm_.evictfrom(sim::kFast, 0, 128 * util::KiB,
                             [&](Region&) { return true; /* lies */ }),
               UsageError);
  for (auto* o : fillers) dm_.destroy_object(o);
  dm_.destroy_object(obj);
}

TEST_F(EvictFromFixture, PartiallyFreeWindowOnlyEvictsLiveBlocks) {
  auto* a = make_fast_object(64 * util::KiB);
  auto* b = make_fast_object(64 * util::KiB);
  auto* c = make_fast_object(64 * util::KiB);
  // Free the middle object: window [0, 192K) now contains a free hole.
  dm_.destroy_object(b);
  int evicted = 0;
  EXPECT_TRUE(dm_.evictfrom(sim::kFast, 0, 192 * util::KiB, [&](Region& r) {
    ++evicted;
    return relocate_to_slow(r);
  }));
  EXPECT_EQ(evicted, 2);  // only a and c
  Region* r = dm_.allocate(sim::kFast, 192 * util::KiB);
  EXPECT_NE(r, nullptr);
  dm_.free(r);
  dm_.destroy_object(a);
  dm_.destroy_object(c);
}

}  // namespace
}  // namespace ca::dm
