// Multi-channel mover tests at the DataManager level: the in-flight
// transfer registry, write-behind eviction window reuse, join-before-free
// and join-before-defragment memory safety, and the stall/overlap
// accounting.  The concurrency tests are TSan targets (tools/check.sh runs
// this binary under CA_SANITIZE=thread): every interleaving of schedule /
// wait_ready / free / defragment against the background mover threads must
// be race-free.
#include <gtest/gtest.h>

#include <cstring>

#include "dm/data_manager.hpp"
#include "util/align.hpp"

namespace ca::dm {
namespace {

class AsyncChannelsFixture : public ::testing::Test {
 protected:
  AsyncChannelsFixture()
      : platform_(sim::Platform::cascade_lake_scaled(16 * util::MiB,
                                                     64 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(AsyncChannelsFixture, WriteBehindReusesWindowWithoutStalling) {
  // The write-behind eviction flow at DM level: dirty fast region, schedule
  // the writeback asynchronously, free the fast region immediately.  The
  // window is reusable with zero simulated delay; the writeback keeps its
  // channel busy in the background.
  Region* fast = dm_.allocate(sim::kFast, 4 * util::MiB);
  Region* slow = dm_.allocate(sim::kSlow, 4 * util::MiB);
  std::memset(fast->data(), 0xA7, fast->size());
  const std::size_t offset = fast->offset();

  const double t0 = clock_.now();
  const double done = dm_.copyto_async(*slow, *fast);
  dm_.free(fast);  // joins the real copy; never advances the clock
  EXPECT_DOUBLE_EQ(clock_.now(), t0);
  EXPECT_GT(done, t0);

  // The window is immediately reusable.
  Region* reuse = dm_.allocate(sim::kFast, 4 * util::MiB);
  ASSERT_NE(reuse, nullptr);
  EXPECT_EQ(reuse->offset(), offset);
  std::memset(reuse->data(), 0x00, reuse->size());  // safe: real copy joined

  // The writeback landed intact before the window was reused.
  for (std::size_t i = 0; i < slow->size(); i += 65537) {
    ASSERT_EQ(std::to_integer<unsigned>(slow->data()[i]), 0xA7u) << i;
  }
  EXPECT_DOUBLE_EQ(slow->ready_at(), done);
  dm_.free(reuse);
  dm_.free(slow);
}

TEST_F(AsyncChannelsFixture, FreeScrubsInflightRegistry) {
  Region* src = dm_.allocate(sim::kSlow, 1 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 1 * util::MiB);
  dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  // An evicted-before-use prefetch: the destination dies with its modeled
  // fill still pending.  No throw; the registry entry is scrubbed.
  dm_.free(dst);
  EXPECT_TRUE(dm_.inflight_transfers().empty());
  EXPECT_EQ(dm_.async_stats().retired, 1u);
  dm_.free(src);
}

TEST_F(AsyncChannelsFixture, RetireAfterClockCatchesUp) {
  Region* src = dm_.allocate(sim::kSlow, 1 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 1 * util::MiB);
  const double done = dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  dm_.retire_transfers();  // modeled completion still pending: no retire
  EXPECT_EQ(dm_.inflight_transfers().size(), 1u);
  clock_.advance(done - clock_.now(), sim::TimeCategory::kCompute);
  dm_.retire_transfers();
  EXPECT_TRUE(dm_.inflight_transfers().empty());
  EXPECT_EQ(dm_.async_stats().retired, 1u);
  EXPECT_EQ(dm_.async_stats().scheduled, 1u);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncChannelsFixture, WaitReadyAccountsStallAndOverlap) {
  Region* src = dm_.allocate(sim::kSlow, 4 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 4 * util::MiB);
  const double done = dm_.copyto_async(*dst, *src);
  const double duration = done - clock_.now();
  clock_.advance(0.6 * duration, sim::TimeCategory::kCompute);
  dm_.wait_ready(*dst);
  const auto& s = dm_.async_stats();
  EXPECT_EQ(s.stalls, 1u);
  EXPECT_NEAR(s.stall_seconds, 0.4 * duration, 1e-9);
  EXPECT_NEAR(s.overlap_seconds, 0.6 * duration, 1e-9);
  EXPECT_FALSE(dst->pending_fill().valid());
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncChannelsFixture, FullyOverlappedTransferCountsNoStall) {
  Region* src = dm_.allocate(sim::kSlow, 1 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 1 * util::MiB);
  const double done = dm_.copyto_async(*dst, *src);
  const double duration = done - clock_.now();
  clock_.advance(2.0 * duration, sim::TimeCategory::kCompute);
  dm_.wait_ready(*dst);
  const auto& s = dm_.async_stats();
  EXPECT_EQ(s.stalls, 0u);
  EXPECT_NEAR(s.overlap_seconds, duration, 1e-9);
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(AsyncChannelsFixture, SyncCopyFromPendingFillWaitsFirst) {
  Region* a = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* b = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* c = dm_.allocate(sim::kSlow, 2 * util::MiB);
  std::memset(a->data(), 0x3D, a->size());
  const double done = dm_.copyto_async(*b, *a);
  // Synchronous copy FROM the in-flight destination: the clock must first
  // catch up to the fill's completion, then pay the copy itself.
  dm_.copyto(*c, *b);
  EXPECT_GE(clock_.now(), done);
  EXPECT_EQ(std::to_integer<unsigned>(c->data()[123]), 0x3Du);
  for (auto* r : {a, b, c}) dm_.free(r);
}

TEST_F(AsyncChannelsFixture, ChainedTransfersRespectModeledDependency) {
  // writeback fast->slow, then fetch slow->fast2 of the same bytes: the
  // fetch may not start before the writeback has (modeled-)completed.
  Region* fast = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* slow = dm_.allocate(sim::kSlow, 2 * util::MiB);
  Region* fast2 = dm_.allocate(sim::kFast, 2 * util::MiB);
  std::memset(fast->data(), 0x66, fast->size());
  const double wb_done = dm_.copyto_async(*slow, *fast);
  const double fetch_done = dm_.copyto_async(*fast2, *slow);
  const double fetch_alone = dm_.engine().modeled_copy_time(
      slow->size(), sim::kSlow, sim::kFast, true);
  EXPECT_NEAR(fetch_done, wb_done + fetch_alone, 1e-9);
  dm_.drain_transfers();
  EXPECT_EQ(std::to_integer<unsigned>(fast2->data()[4321]), 0x66u);
  for (auto* r : {fast, slow, fast2}) dm_.free(r);
}

TEST_F(AsyncChannelsFixture, DefragmentJoinsInflightRealCopies) {
  // Regions with in-flight fills survive compaction: defragment joins every
  // real copy before memmoving, and registry entries keep pointing at live
  // Region objects (whose data pointers are updated in place).
  Region* keep = dm_.allocate(sim::kFast, 1 * util::MiB);
  Region* hole = dm_.allocate(sim::kFast, 2 * util::MiB);
  Region* dst = dm_.allocate(sim::kFast, 4 * util::MiB);
  Region* src = dm_.allocate(sim::kSlow, 4 * util::MiB);
  std::memset(src->data(), 0x99, src->size());
  dm_.free(hole);  // leave a gap so compaction actually moves dst
  dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  dm_.defragment(sim::kFast);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  EXPECT_EQ(dm_.inflight_transfers()[0].dst, dst);
  for (std::size_t i = 0; i < dst->size(); i += 65537) {
    ASSERT_EQ(std::to_integer<unsigned>(dst->data()[i]), 0x99u) << i;
  }
  for (auto* r : {keep, dst, src}) dm_.free(r);
}

TEST_F(AsyncChannelsFixture, ConcurrentScheduleWaitFreeDefragInterleavings) {
  // TSan target: hammer every combination of schedule, wait_ready, free and
  // defragment while mover threads stream bytes in the background.
  constexpr std::size_t kRounds = 12;
  constexpr std::size_t kSlots = 4;
  for (std::size_t round = 0; round < kRounds; ++round) {
    Region* srcs[kSlots];
    Region* dsts[kSlots];
    for (std::size_t i = 0; i < kSlots; ++i) {
      srcs[i] = dm_.allocate(sim::kSlow, 1 * util::MiB);
      dsts[i] = dm_.allocate(sim::kFast, 1 * util::MiB);
      std::memset(srcs[i]->data(), static_cast<int>(0x10 + i), 1 * util::MiB);
      dm_.copyto_async(*dsts[i], *srcs[i]);
    }
    switch (round % 4) {
      case 0:
        for (std::size_t i = 0; i < kSlots; ++i) dm_.wait_ready(*dsts[i]);
        break;
      case 1:
        dm_.free(dsts[0]);  // evicted-before-use: join + scrub
        dsts[0] = nullptr;
        dm_.defragment(sim::kFast);
        break;
      case 2:
        dm_.defragment(sim::kFast);
        for (std::size_t i = 0; i < kSlots; ++i) dm_.wait_ready(*dsts[i]);
        break;
      case 3:
        dm_.drain_transfers();
        break;
    }
    for (std::size_t i = 0; i < kSlots; ++i) {
      if (dsts[i] != nullptr) {
        dm_.wait_ready(*dsts[i]);
        ASSERT_EQ(std::to_integer<unsigned>(dsts[i]->data()[777]), 0x10 + i);
        dm_.free(dsts[i]);
      }
      dm_.free(srcs[i]);
    }
    dm_.check_invariants();
  }
  dm_.drain_transfers();
  EXPECT_EQ(dm_.async_stats().scheduled, kRounds * kSlots);
}

TEST_F(AsyncChannelsFixture, DestructorDrainsPendingRealCopies) {
  // A DataManager destroyed with transfers still in flight must join them
  // before the arenas are torn down (covered by ASan/TSan runs).
  auto local = std::make_unique<DataManager>(platform_, clock_, counters_);
  Region* src = local->allocate(sim::kSlow, 8 * util::MiB);
  Region* dst = local->allocate(sim::kFast, 8 * util::MiB);
  local->copyto_async(*dst, *src);
  local.reset();  // must not race or use-after-free
}

}  // namespace
}  // namespace ca::dm