// Injected lock-discipline hazards under the schedule explorer: the
// RaceTestPeer stages a deliberate ABBA order inversion and a
// lock-held-across-Transfer::join(), and these tests assert ca::lockdep
// flags each in EVERY explored schedule (the detectors hook acquisition
// order and blocking-op entry, so the findings do not depend on the
// interleaving), with seed-replayable reports.  The real, fixed paths must
// come back clean under the same exploration.
//
// Requires CA_RACE (the explorer) which implies CA_LOCKDEP_ENABLED;
// self-skips elsewhere.
#include <gtest/gtest.h>

#if !defined(CA_RACE)

TEST(LockdepHazards, InstrumentationRequired) {
  GTEST_SKIP() << "CA_RACE instrumentation not compiled in; configure with "
                  "-DCA_RACE=ON to run the lockdep hazard scenarios";
}

#else  // CA_RACE

#include <cstdio>
#include <string>
#include <vector>

#include "dm/data_manager.hpp"
#include "lockdep/lockdep.hpp"
#include "race/explorer.hpp"
#include "race_test_peer.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca {
namespace {

using lockdep::LockdepReport;

/// One worker per pool so the explored task set is host-independent
/// (matches tests/race/race_hazard_test.cpp).
sim::Platform tiny_platform() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 4 * util::MiB);
  platform.copy_threads = 1;
  platform.mover_channels = 1;
  return platform;
}

/// Run `scenario` under the explorer and count, per schedule, whether
/// lockdep produced at least one report of `kind`.  The reports are
/// drained inside the scenario (after the workload) so each schedule is
/// scored independently even though the order graph persists across them.
struct HazardSweep {
  race::ExplorerResult explorer;
  std::size_t flagged_schedules = 0;
  std::vector<std::string> first_reports;  ///< rendered, first schedule only
};

template <class Scenario>
HazardSweep sweep(std::size_t schedules, LockdepReport::Kind kind,
                  Scenario scenario) {
  lockdep::reset_for_testing();
  HazardSweep out;
  race::ExplorerOptions opts;
  opts.schedules = schedules;
  opts.mix_strategies = false;
  opts.log_failures = false;
  out.explorer = race::explore(opts, [&] {
    scenario();
    bool flagged = false;
    for (const auto& report : lockdep::take_reports()) {
      if (report.kind != kind) continue;
      flagged = true;
      if (out.flagged_schedules == 0) {
        out.first_reports.push_back(report.to_string());
      }
    }
    if (flagged) ++out.flagged_schedules;
  });
  return out;
}

/// Deliberate ABBA: inflight_mu_ -> CopyEngine::mu_ in one scope, then the
/// reverse in another, around a live async transfer for schedule diversity.
void abba_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);
  dm::RaceTestPeer::abba_inversion(dm);
  dm.free(dst);
  dm.free(src);
}

/// Deliberate held-across-join: the registry lock is held across
/// Transfer::join(), the discipline retire_transfers exists to avoid.
void join_locked_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  dm.copyto_async(*dst, *src);
  dm::RaceTestPeer::join_while_locked(dm);
  dm.free(dst);
  dm.free(src);
}

/// The fixed paths: async copy, modeled retirement, real-sync on free.
void sanctioned_scenario() {
  const sim::Platform platform = tiny_platform();
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);
  dm::Region* src = dm.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm.allocate(sim::kFast, 64 * util::KiB);
  const double done = dm.copyto_async(*dst, *src);
  for (int i = 0; i < 4; ++i) (void)dm.inflight_transfers();
  clock.advance(done - clock.now() + 1e-9, sim::TimeCategory::kOther);
  dm.retire_transfers();
  dm.free(dst);
  dm.free(src);
}

TEST(LockdepHazards, AbbaInversionFlaggedInEverySchedule) {
  const auto result =
      sweep(1100, LockdepReport::Kind::kOrderInversion, abba_scenario);
  EXPECT_EQ(result.explorer.schedules_run, 1100u);
  EXPECT_GE(result.explorer.distinct_schedules, 1000u);
  // The inversion is acquisition-order evidence: present in 100% of
  // schedules, regardless of interleaving.
  EXPECT_EQ(result.flagged_schedules, result.explorer.schedules_run);
  // No *data* race: the hazard is pure lock discipline, the detector that
  // catches it must be lockdep, not the vector clocks.
  EXPECT_EQ(result.explorer.failing_schedules, 0u);
  ASSERT_FALSE(result.first_reports.empty());
  const std::string& text = result.first_reports.front();
  EXPECT_NE(text.find("dm::DataManager::inflight_mu_"), std::string::npos);
  EXPECT_NE(text.find("mem::CopyEngine::mu_"), std::string::npos);
  std::fprintf(stderr,
               "ca::lockdep: ABBA inversion flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.flagged_schedules, result.explorer.schedules_run,
               result.explorer.distinct_schedules);
}

TEST(LockdepHazards, JoinWhileLockedFlaggedInEverySchedule) {
  const auto result = sweep(1100, LockdepReport::Kind::kHeldAcrossBlocking,
                            join_locked_scenario);
  EXPECT_EQ(result.explorer.schedules_run, 1100u);
  EXPECT_GE(result.explorer.distinct_schedules, 1000u);
  // The blocking hook fires at join() entry, before the already-done
  // early-out, so the finding is schedule-independent.
  EXPECT_EQ(result.flagged_schedules, result.explorer.schedules_run);
  EXPECT_EQ(result.explorer.failing_schedules, 0u);
  ASSERT_FALSE(result.first_reports.empty());
  const std::string& text = result.first_reports.front();
  EXPECT_NE(text.find("mem::Transfer::join"), std::string::npos);
  EXPECT_NE(text.find("dm::DataManager::inflight_mu_"), std::string::npos);
  std::fprintf(stderr,
               "ca::lockdep: held-across-join flagged in %zu/%zu schedules "
               "(%zu distinct)\n",
               result.flagged_schedules, result.explorer.schedules_run,
               result.explorer.distinct_schedules);
}

TEST(LockdepHazards, FixedPathsAreCleanAcrossSchedules) {
  lockdep::reset_for_testing();
  race::ExplorerOptions opts;
  opts.schedules = 300;
  std::size_t flagged = 0;
  const auto result = race::explore(opts, [&] {
    sanctioned_scenario();
    if (!lockdep::take_reports().empty()) ++flagged;
  });
  EXPECT_EQ(result.schedules_run, 300u);
  EXPECT_EQ(result.failing_schedules, 0u);
  EXPECT_EQ(flagged, 0u);
  // Across all 300 interleavings the accumulated acquisition-order graph
  // holds only the sanctioned objects_mu_ -> heap_mu_ edge (allocate and
  // release move the tables and the heap together) and no lock was ever
  // held across a blocking operation.
  for (const auto& edge : lockdep::edges()) {
    EXPECT_TRUE(edge.from == "dm::DataManager::objects_mu_" &&
                edge.to == "dm::DataManager::heap_mu_")
        << "unsanctioned edge: " << edge.from << " -> " << edge.to;
  }
  EXPECT_TRUE(lockdep::blocking_edges().empty());
}

TEST(LockdepHazards, ReportsReplayDeterministicallyFromSeed) {
  // Replay the same seed twice: the rendered lockdep reports -- chains,
  // sites, everything -- must match byte for byte.
  auto run_once = [](std::uint64_t seed) {
    lockdep::reset_for_testing();
    std::vector<std::string> rendered;
    (void)race::replay(seed, race::Scheduler::Strategy::kPct, [&] {
      abba_scenario();
      for (const auto& report : lockdep::take_reports()) {
        rendered.push_back(report.to_string());
      }
    });
    return rendered;
  };
  const auto first = run_once(0x5EED0042u);
  const auto second = run_once(0x5EED0042u);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace ca

#endif  // CA_RACE
