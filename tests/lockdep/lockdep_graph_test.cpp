// Sanctioned-workload graph test: drives the real code paths -- sync and
// async copies, modeled retirement, tenant registration, eviction,
// parallel_for rendezvous, kernel scratch leases -- so every production
// lock class is *acquired* (not merely registered) and every sanctioned
// acquisition pattern feeds the order graph, then asserts the graph matches
// the declared hierarchy in docs/lock_hierarchy.json: exactly one ordering
// edge (objects_mu_ -> heap_mu_), zero held-across-blocking occurrences.
//
// When CA_LOCKDEP_DUMP names a file, the observed graph is serialized there
// for tools/lockdep_check.py --graph, which diffs it against the manifest
// in both directions (an undeclared runtime edge fails, and so does a
// declared class the workload never exercised).  tools/check.sh's lockdep
// stage runs exactly this test with the dump enabled.
//
// Requires a CA_LOCKDEP_ENABLED build; self-skips elsewhere.
#include <gtest/gtest.h>

#if !defined(CA_LOCKDEP_ENABLED)

TEST(LockdepGraph, InstrumentationRequired) {
  GTEST_SKIP() << "lockdep not compiled in; configure with -DCA_LOCKDEP=ON "
                  "(or a Debug / CA_RACE build) to run the graph tests";
}

#else  // CA_LOCKDEP_ENABLED

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "comm/comm_engine.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "dnn/scratch.hpp"
#include "lockdep/lockdep.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/threadpool.hpp"

namespace ca {
namespace {

/// Every production lock class the manifest declares.  Keep in sync with
/// docs/lock_hierarchy.json (tools/lockdep_check.py enforces the manifest
/// against the annotations and against this test's dump).
const char* const kProductionClasses[] = {
    "comm::CommEngine::mu_",         "comm::Reduction::State::mu",
    "dm::DataManager::heap_mu_",     "dm::DataManager::inflight_mu_",
    "dm::DataManager::objects_mu_",  "dm::DataManager::tenants_mu_",
    "dnn::ScratchPool::mu_",         "mem::CopyEngine::mu_",
    "mem::Transfer::State::mu",      "util::CompletionLatch::mu_",
    "util::ThreadPool::mu_",
};

/// The sanctioned workload: touches every subsystem that owns a lock.
void run_sanctioned_workload() {
  sim::Platform platform =
      sim::Platform::cascade_lake_scaled(1 * util::MiB, 16 * util::MiB);
  sim::Clock clock;
  telemetry::TrafficCounters counters;
  dm::DataManager dm(platform, clock, counters);

  // Tenant registration: tenants_mu_.  Allocation below charges this
  // tenant, so the quota/accounting paths run too.
  const dm::TenantId tenant = dm.register_tenant("lockdep-workload");
  dm.set_tenant_quota(tenant, sim::kFast, 8 * util::MiB);

  // Allocate / free: objects_mu_ -> heap_mu_, the one sanctioned ordering
  // edge (the tables and the device heap move together so block cookies
  // always name live entries).  Sync copy: CopyEngine::mu_,
  // ThreadPool::mu_, CompletionLatch::mu_ (the chunked copy's
  // parallel_for rendezvous).
  dm::Region* a = dm.allocate(sim::kSlow, 256 * util::KiB, tenant);
  dm::Region* b = dm.allocate(sim::kFast, 256 * util::KiB, tenant);
  dm.copyto(*b, *a);

  // Async transfers: Transfer::State::mu, DataManager::inflight_mu_, and
  // the join discipline in retire_transfers / sync_region_real.
  const double done = dm.copyto_async(*a, *b);
  for (int i = 0; i < 4; ++i) (void)dm.inflight_transfers();
  clock.advance(done - clock.now() + 1e-9, sim::TimeCategory::kOther);
  dm.retire_transfers();

  // Eviction: the candidate scan under heap_mu_ plus the lock-free
  // callback discipline (the callback frees through the normal path, so
  // it re-enters objects_mu_ -> heap_mu_ without holding either).
  ASSERT_TRUE(dm.evictfrom(
      sim::kFast, 0, 64 * util::KiB,
      [&](dm::Region& victim) {
        dm.free(&victim);
        b = nullptr;
        return true;
      },
      tenant));
  if (b != nullptr) dm.free(b);
  dm.free(a);

  // Allreduce: CommEngine::mu_ (interconnect scheduling, stats polling)
  // and Reduction::State::mu (the real-completion handshake in join()).
  // The spans travel into the engine and are reset on the pool thread
  // BEFORE State::mu is taken -- no pin is ever dropped under a lock.
  {
    comm::CommEngine comm_eng(
        comm::CommConfig{2, comm::LinkModel::ethernet_scaled(), 1, {}});
    dm::Object* g0 = dm.create_object(4 * util::KiB, "lockdep:g0", tenant,
                                      dm::ObjectClass::kGradient);
    dm::Object* g1 = dm.create_object(4 * util::KiB, "lockdep:g1", tenant,
                                      dm::ObjectClass::kGradient);
    for (dm::Object* g : {g0, g1}) {
      dm::Region* r = dm.allocate(sim::kFast, 4 * util::KiB, tenant);
      ASSERT_NE(r, nullptr);
      dm.setprimary(*g, *r);
    }
    std::vector<dm::PinnedSpan> parts;
    parts.push_back(dm.access(*g0, /*write=*/true));
    parts.push_back(dm.access(*g1, /*write=*/true));
    comm::Reduction red =
        comm_eng.allreduce_async(std::move(parts), /*earliest_start=*/0.0);
    red.join();
    (void)comm_eng.stats();
    comm_eng.drain();
    dm.destroy_object(g0);
    dm.destroy_object(g1);
  }

  // Kernel scratch leases: ScratchPool::mu_.
  dnn::real::ScratchPool scratch;
  {
    auto lease = scratch.acquire(1024);
    ASSERT_GE(lease.size(), 1024u);
  }

  // A standalone pool wait_idle for the ThreadPool cv paths, plus a
  // parallel_for forced wide (min_grain = 1, so it cannot run inline) for
  // the CompletionLatch rendezvous -- the sync copy above may stay
  // single-chunk, so this is what guarantees the latch class registers.
  util::ThreadPool pool(2);
  pool.submit([] {});
  pool.wait_idle();
  sync::atomic<std::size_t> covered{0};
  pool.parallel_for(
      64,
      [&](std::size_t begin, std::size_t end) {
        covered.fetch_add(end - begin);
      },
      /*min_grain=*/1);
  ASSERT_EQ(covered.load(), 64u);
}

TEST(LockdepGraph, SanctionedWorkloadMatchesDeclaredHierarchy) {
  lockdep::reset_for_testing();
  run_sanctioned_workload();

  // Every declared class registered (the dump below would otherwise pass
  // trivially by never exercising a subsystem).  tools/lockdep_check.py
  // additionally requires each class's dumped `acquires` count to be
  // non-zero -- registration alone is not coverage.
  const std::string dump = lockdep::dump_graph_json();
  for (const char* cls : kProductionClasses) {
    EXPECT_NE(dump.find(std::string("\"") + cls + "\""), std::string::npos)
        << "lock class never registered by the workload: " << cls;
  }

  // The sanctioned hierarchy has exactly one ordering edge -- the
  // DataManager acquires heap_mu_ under objects_mu_ on allocate/release/
  // defragment -- and no lock is held across a blocking op.
  const auto edges = lockdep::edges();
  for (const auto& edge : edges) {
    if (edge.from == "dm::DataManager::objects_mu_" &&
        edge.to == "dm::DataManager::heap_mu_") {
      continue;
    }
    ADD_FAILURE() << "undeclared ordering edge observed: " << edge.from
                  << " -> " << edge.to << " (acquired at " << edge.site
                  << ")";
  }
  EXPECT_TRUE(std::any_of(edges.begin(), edges.end(),
                          [](const lockdep::EdgeInfo& e) {
                            return e.from == "dm::DataManager::objects_mu_" &&
                                   e.to == "dm::DataManager::heap_mu_";
                          }))
      << "the sanctioned objects_mu_ -> heap_mu_ edge was never observed "
         "(allocate should exercise it)";
  const auto blocking = lockdep::blocking_edges();
  for (const auto& b : blocking) {
    ADD_FAILURE() << "lock held across blocking op: " << b.cls << " across "
                  << b.op << " at " << b.site;
  }
  EXPECT_EQ(lockdep::report_count(), 0u);

  // Hand the observed graph to tools/lockdep_check.py when asked.
  if (const char* path = std::getenv("CA_LOCKDEP_DUMP")) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write CA_LOCKDEP_DUMP file " << path;
    out << dump;
  }
}

}  // namespace
}  // namespace ca

#endif  // CA_LOCKDEP_ENABLED
