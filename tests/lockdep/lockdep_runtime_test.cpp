// Unit tests for the ca::lockdep runtime half: class registry, held-stack
// bookkeeping, acquisition-order graph, cycle detection, recursive-class
// detection, held-across-blocking (with waivers and cv-wait exclusion), and
// the deterministic JSON dump tools/lockdep_check.py consumes.
//
// These run against raw ca::sync::mutex instances with test-local lock
// classes -- no DataManager -- so each detector is exercised in isolation.
// Requires a CA_LOCKDEP_ENABLED build (Debug, CA_RACE, or -DCA_LOCKDEP=ON);
// self-skips elsewhere.
#include <gtest/gtest.h>

#if !defined(CA_LOCKDEP_ENABLED)

TEST(LockdepRuntime, InstrumentationRequired) {
  GTEST_SKIP() << "lockdep not compiled in; configure with -DCA_LOCKDEP=ON "
                  "(or a Debug / CA_RACE build) to run the runtime tests";
}

#else  // CA_LOCKDEP_ENABLED

#include <algorithm>
#include <string>
#include <vector>

#include "lockdep/lockdep.hpp"
#include "race/sync.hpp"

namespace ca {
namespace {

using lockdep::LockdepReport;

/// Fresh graph/reports per test; class registrations persist for the
/// process lifetime by design (CA_LOCK_CLASS statics cache the pointers).
class LockdepRuntime : public ::testing::Test {
 protected:
  void SetUp() override {
    lockdep::reset_for_testing();
    ASSERT_EQ(lockdep::report_count(), 0u);
  }
  void TearDown() override { lockdep::reset_for_testing(); }
};

std::vector<LockdepReport> reports_of_kind(LockdepReport::Kind kind) {
  std::vector<LockdepReport> out;
  for (auto& r : lockdep::take_reports()) {
    if (r.kind == kind) out.push_back(std::move(r));
  }
  return out;
}

TEST_F(LockdepRuntime, NestedAcquireRecordsOrderedEdge) {
  sync::mutex a{CA_LOCK_CLASS("test::edge::A")};
  sync::mutex b{CA_LOCK_CLASS("test::edge::B")};
  {
    sync::lock la(a);
    sync::lock lb(b);
    const auto held = lockdep::held_classes();
    ASSERT_EQ(held.size(), 2u);
    EXPECT_EQ(held[0], "test::edge::A");
    EXPECT_EQ(held[1], "test::edge::B");
  }
  EXPECT_TRUE(lockdep::held_classes().empty());

  const auto edges = lockdep::edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, "test::edge::A");
  EXPECT_EQ(edges[0].to, "test::edge::B");
  // The edge's provenance is this file (the acquire of `lb` above).
  EXPECT_NE(edges[0].site.find("lockdep_runtime_test.cpp"),
            std::string::npos);
  EXPECT_EQ(lockdep::report_count(), 0u);
}

TEST_F(LockdepRuntime, AbbaInversionReportedWithBothChains) {
  sync::mutex a{CA_LOCK_CLASS("test::abba::A")};
  sync::mutex b{CA_LOCK_CLASS("test::abba::B")};
  {
    sync::lock la(a);
    sync::lock lb(b);  // records A -> B
  }
  {
    sync::lock lb(b);
    sync::lock la(a);  // B -> A: cycle against the existing A -> B
  }
  const auto inversions =
      reports_of_kind(LockdepReport::Kind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  const auto& report = inversions.front();
  // Observed chain: holding B, acquiring A.
  ASSERT_EQ(report.chain.size(), 2u);
  EXPECT_EQ(report.chain[0].cls->name, "test::abba::B");
  EXPECT_EQ(report.chain[1].cls->name, "test::abba::A");
  // Conflicting pre-existing path: A -> B.
  ASSERT_EQ(report.conflict.size(), 2u);
  EXPECT_EQ(report.conflict[0].cls->name, "test::abba::A");
  EXPECT_EQ(report.conflict[1].cls->name, "test::abba::B");
  // The rendering names both chains and their sites.
  const std::string text = report.to_string();
  EXPECT_NE(text.find("lock-order inversion"), std::string::npos);
  EXPECT_NE(text.find("test::abba::A"), std::string::npos);
  EXPECT_NE(text.find("test::abba::B"), std::string::npos);
  EXPECT_NE(text.find("lockdep_runtime_test.cpp"), std::string::npos);
}

TEST_F(LockdepRuntime, InversionReportedOnEveryReexecution) {
  // The graph persists (explorer schedules accumulate into it) but each
  // re-execution of the inversion must produce a fresh report, so a hazard
  // is flagged in 100% of schedules, not just the first.
  sync::mutex a{CA_LOCK_CLASS("test::rerun::A")};
  sync::mutex b{CA_LOCK_CLASS("test::rerun::B")};
  for (int round = 0; round < 3; ++round) {
    {
      sync::lock la(a);
      sync::lock lb(b);
    }
    {
      sync::lock lb(b);
      sync::lock la(a);
    }
    const auto inversions =
        reports_of_kind(LockdepReport::Kind::kOrderInversion);
    // Round 0: only the B->A acquire sees a conflicting path.  Later
    // rounds: both nestings conflict with the persisted graph.
    EXPECT_GE(inversions.size(), 1u) << "round " << round;
  }
}

TEST_F(LockdepRuntime, ThreeLockCycleFoundThroughTransitivePath) {
  sync::mutex a{CA_LOCK_CLASS("test::tri::A")};
  sync::mutex b{CA_LOCK_CLASS("test::tri::B")};
  sync::mutex c{CA_LOCK_CLASS("test::tri::C")};
  {
    sync::lock la(a);
    sync::lock lb(b);  // A -> B
  }
  {
    sync::lock lb(b);
    sync::lock lc(c);  // B -> C
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
  {
    sync::lock lc(c);
    sync::lock la(a);  // C -> A closes A -> B -> C -> A
  }
  const auto inversions =
      reports_of_kind(LockdepReport::Kind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  // The conflict path walks the transitive ordering A -> B -> C.
  ASSERT_EQ(inversions.front().conflict.size(), 3u);
  EXPECT_EQ(inversions.front().conflict[0].cls->name, "test::tri::A");
  EXPECT_EQ(inversions.front().conflict[1].cls->name, "test::tri::B");
  EXPECT_EQ(inversions.front().conflict[2].cls->name, "test::tri::C");
}

TEST_F(LockdepRuntime, TrylockAddsNoOrderingEdge) {
  sync::mutex a{CA_LOCK_CLASS("test::trylock::A")};
  sync::mutex b{CA_LOCK_CLASS("test::trylock::B")};
  {
    sync::lock la(a);
    ASSERT_TRUE(b.try_lock());  // held, but no A -> B edge: cannot deadlock
    b.unlock();
  }
  EXPECT_TRUE(lockdep::edges().empty());
  {
    sync::lock lb(b);
    sync::lock la(a);  // would be an inversion if trylock had added an edge
  }
  EXPECT_TRUE(reports_of_kind(LockdepReport::Kind::kOrderInversion).empty());
}

TEST_F(LockdepRuntime, SameClassTwiceOnOneStackIsRecursive) {
  // Two *instances* of one class (e.g. two Transfer::State::mu): holding
  // both on one stack self-deadlocks under the wrong pairing.
  sync::mutex first{CA_LOCK_CLASS("test::recursive::M")};
  sync::mutex second{CA_LOCK_CLASS("test::recursive::M")};
  {
    sync::lock l1(first);
    sync::lock l2(second);
  }
  const auto recursive =
      reports_of_kind(LockdepReport::Kind::kRecursiveClass);
  ASSERT_EQ(recursive.size(), 1u);
  EXPECT_EQ(recursive.front().chain.back().cls->name, "test::recursive::M");
}

TEST_F(LockdepRuntime, HeldAcrossBlockingReported) {
  sync::mutex a{CA_LOCK_CLASS("test::blocking::A")};
  {
    sync::lock la(a);
    CA_LOCKDEP_ON_BLOCKING("test::fake_join");
  }
  const auto blocked =
      reports_of_kind(LockdepReport::Kind::kHeldAcrossBlocking);
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked.front().blocking_op, "test::fake_join");
  ASSERT_EQ(blocked.front().chain.size(), 1u);
  EXPECT_EQ(blocked.front().chain[0].cls->name, "test::blocking::A");

  const auto edges = lockdep::blocking_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].cls, "test::blocking::A");
  EXPECT_EQ(edges[0].op, "test::fake_join");
}

TEST_F(LockdepRuntime, BlockingWithNothingHeldIsClean) {
  CA_LOCKDEP_ON_BLOCKING("test::fake_join");
  EXPECT_EQ(lockdep::report_count(), 0u);
  EXPECT_TRUE(lockdep::blocking_edges().empty());
}

TEST_F(LockdepRuntime, WaivedClassMayBlockWhileHeld) {
  lockdep::waive_blocking("test::waived::A");
  sync::mutex a{CA_LOCK_CLASS("test::waived::A")};
  {
    sync::lock la(a);
    CA_LOCKDEP_ON_BLOCKING("test::fake_join");
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
  EXPECT_TRUE(lockdep::blocking_edges().empty());
}

TEST_F(LockdepRuntime, CvWaitExcludesItsOwnMutexButNotOthers) {
  sync::mutex outer{CA_LOCK_CLASS("test::cvwait::outer")};
  sync::mutex inner{CA_LOCK_CLASS("test::cvwait::inner")};
  sync::condition_variable cv;
  {
    // Waiting while holding only the waited mutex is the sanctioned
    // pattern: the wait releases it, so nothing is held across the block.
    sync::lock li(inner);
    cv.wait(li, [] { return true; });
  }
  EXPECT_EQ(lockdep::report_count(), 0u);
  {
    // Holding a *second* lock across the wait is the bug.
    sync::lock lo(outer);
    sync::lock li(inner);
    cv.wait(li, [] { return true; });
  }
  const auto blocked =
      reports_of_kind(LockdepReport::Kind::kHeldAcrossBlocking);
  ASSERT_EQ(blocked.size(), 1u);
  ASSERT_EQ(blocked.front().chain.size(), 1u);
  EXPECT_EQ(blocked.front().chain[0].cls->name, "test::cvwait::outer");
}

TEST_F(LockdepRuntime, TakeReportsDrainsButKeepsGraph) {
  sync::mutex a{CA_LOCK_CLASS("test::drain::A")};
  sync::mutex b{CA_LOCK_CLASS("test::drain::B")};
  {
    sync::lock la(a);
    sync::lock lb(b);
  }
  {
    sync::lock lb(b);
    sync::lock la(a);
  }
  EXPECT_GE(lockdep::report_count(), 1u);
  (void)lockdep::take_reports();
  EXPECT_EQ(lockdep::report_count(), 0u);
  // The ordering evidence survives the drain.
  EXPECT_EQ(lockdep::edges().size(), 2u);
}

TEST_F(LockdepRuntime, DumpIsValidStableJsonNamingClassesAndEdges) {
  sync::mutex a{CA_LOCK_CLASS("test::dump::A")};
  sync::mutex b{CA_LOCK_CLASS("test::dump::B")};
  {
    sync::lock la(a);
    sync::lock lb(b);
    CA_LOCKDEP_ON_BLOCKING("test::dump_join");
  }
  const std::string dump = lockdep::dump_graph_json();
  EXPECT_NE(dump.find("\"classes\""), std::string::npos);
  EXPECT_NE(dump.find("\"test::dump::A\""), std::string::npos);
  EXPECT_NE(
      dump.find("{\"from\": \"test::dump::A\", \"to\": \"test::dump::B\""),
      std::string::npos);
  EXPECT_NE(dump.find("\"op\": \"test::dump_join\""), std::string::npos);
  // Byte-stable: the registry is pointer-keyed internally, the dump is not.
  EXPECT_EQ(dump, lockdep::dump_graph_json());
}

}  // namespace
}  // namespace ca

#endif  // CA_LOCKDEP_ENABLED
