// audit::verify detection tests: a clean system audits clean, and each
// class of deliberate corruption -- injected through the test-only
// AllocatorTestPeer seam -- is caught under its catalogued invariant name.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

#include "audit/audit.hpp"
#include "dm/audit_hook.hpp"
#include "dm/data_manager.hpp"
#include "dm/pinned_span.hpp"
#include "mem/freelist_allocator.hpp"
#include "ptrprov/ptrprov.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca::mem {

// The deliberately-broken-allocator hook: a friend of FreeListAllocator
// (declared in the header, defined only here) that mutates private state in
// ways the public API never would, so the audit's detection power can be
// proven test by test.
struct AllocatorTestPeer {
  static constexpr std::uint32_t kNil = FreeListAllocator::kNil;

  static std::uint32_t first_free_node(FreeListAllocator& a) {
    for (std::uint32_t i = a.head_; i != kNil; i = a.nodes_[i].next) {
      if (!a.nodes_[i].allocated) return i;
    }
    return kNil;
  }

  /// Unlink a free block from its size-class bin without freeing it: the
  /// block stays in the tiling but allocate() can no longer find it.
  static void drop_free_index_entry(FreeListAllocator& a) {
    const std::uint32_t i = first_free_node(a);
    ASSERT_NE(i, kNil) << "no free block to unlink";
    a.bin_unlink(i);
  }

  /// Thread a dangling node (not part of the tiling) into its bin.
  static void forge_free_index_entry(FreeListAllocator& a, std::size_t size,
                                     std::size_t offset) {
    const std::uint32_t i = a.new_node();
    a.nodes_[i].offset = offset;
    a.nodes_[i].size = size;
    a.bin_link(i);
  }

  /// Refile a free block under the wrong size class (the bin links stay
  /// well-formed -- only the classification is wrong).
  static void misfile_free_block(FreeListAllocator& a) {
    const std::uint32_t i = first_free_node(a);
    ASSERT_NE(i, kNil) << "no free block to misfile";
    a.bin_unlink(i);
    FreeListAllocator::Node& n = a.nodes_[i];
    const std::size_t wrong =
        (FreeListAllocator::bin_for_units(n.size >> a.shift_) + 1) %
        FreeListAllocator::kBinCount;
    n.bin = static_cast<std::uint16_t>(wrong);
    n.bin_prev = kNil;
    n.bin_next = a.bins_[wrong].head;
    if (a.bins_[wrong].head != kNil) {
      a.nodes_[a.bins_[wrong].head].bin_prev = i;
    } else {
      a.bins_[wrong].tail = i;
    }
    a.bins_[wrong].head = i;
    a.set_bin_bit(wrong);
  }

  /// Swap the first two entries of the first bin holding at least two
  /// blocks, breaking the order the fit policy relies on.
  static void reorder_bin_entries(FreeListAllocator& a) {
    for (auto& bl : a.bins_) {
      if (bl.head == kNil || a.nodes_[bl.head].bin_next == kNil) continue;
      const std::uint32_t first = bl.head;
      const std::uint32_t second = a.nodes_[first].bin_next;
      bl.head = second;
      a.nodes_[second].bin_prev = kNil;
      a.nodes_[first].bin_next = a.nodes_[second].bin_next;
      if (a.nodes_[first].bin_next != kNil) {
        a.nodes_[a.nodes_[first].bin_next].bin_prev = first;
      } else {
        bl.tail = first;
      }
      a.nodes_[second].bin_next = first;
      a.nodes_[first].bin_prev = second;
      return;
    }
    FAIL() << "no bin holds two blocks";
  }

  /// Clear the occupancy bit of the first occupied bin (hides its blocks
  /// from allocate's find-first-set).
  static void clear_occupied_bin_bit(FreeListAllocator& a) {
    const std::uint32_t i = first_free_node(a);
    ASSERT_NE(i, kNil) << "no free block";
    a.clear_bin_bit(a.nodes_[i].bin);
  }

  /// Set the occupancy bit of an empty bin.
  static void set_stray_bin_bit(FreeListAllocator& a) {
    for (std::size_t b = 0; b < FreeListAllocator::kBinCount; ++b) {
      if (a.bins_[b].head == kNil) {
        a.set_bin_bit(b);
        return;
      }
    }
    FAIL() << "every bin occupied";
  }

  /// Point a block's address-order prev link at itself (a torn boundary
  /// tag: free() would coalesce with the wrong neighbour).
  static void corrupt_prev_link(FreeListAllocator& a) {
    for (std::uint32_t i = a.head_; i != kNil; i = a.nodes_[i].next) {
      if (a.nodes_[i].prev != kNil) {
        a.nodes_[i].prev = i;
        return;
      }
    }
    FAIL() << "heap has a single block";
  }

  /// Drop a block start from the start bitmap (for_blocks_from would skip
  /// or mis-resolve the predecessor query).
  static void clear_start_bit_of_block(FreeListAllocator& a) {
    for (std::uint32_t i = a.head_; i != kNil; i = a.nodes_[i].next) {
      if (a.nodes_[i].offset != 0) {
        a.clear_start_bit(a.nodes_[i].offset);
        return;
      }
    }
    FAIL() << "heap has a single block";
  }

  /// Split the first free block into two adjacent free blocks (both binned
  /// and indexed, so only the coalescing invariant breaks).
  static void split_free_block(FreeListAllocator& a) {
    for (std::uint32_t i = a.head_; i != kNil; i = a.nodes_[i].next) {
      if (a.nodes_[i].allocated || a.nodes_[i].size < 2 * a.alignment_) {
        continue;
      }
      a.bin_unlink(i);
      const std::size_t size = a.nodes_[i].size;
      const std::size_t half = a.alignment_ * (size / a.alignment_ / 2);
      a.nodes_[i].size = half;
      const std::uint32_t old_next = a.nodes_[i].next;
      const std::uint32_t r = a.new_node();
      a.nodes_[r].offset = a.nodes_[i].offset + half;
      a.nodes_[r].size = size - half;
      a.nodes_[r].prev = i;
      a.nodes_[r].next = old_next;
      if (old_next != kNil) a.nodes_[old_next].prev = r;
      a.nodes_[i].next = r;
      a.index_.emplace(a.nodes_[r].offset, r);
      a.set_start_bit(a.nodes_[r].offset);
      a.bin_link(i);
      a.bin_link(r);
      ++a.free_blocks_;
      return;
    }
    FAIL() << "no free block large enough to split";
  }

  /// Shrink an allocated block without fixing its neighbours (tiling gap).
  static void shrink_allocated_block(FreeListAllocator& a) {
    for (std::uint32_t i = a.head_; i != kNil; i = a.nodes_[i].next) {
      if (!a.nodes_[i].allocated || a.nodes_[i].size < 2 * a.alignment_) {
        continue;
      }
      a.nodes_[i].size -= a.alignment_;
      a.allocated_bytes_ -= a.alignment_;
      return;
    }
    FAIL() << "no allocated block large enough to shrink";
  }

  static void drift_allocated_bytes(FreeListAllocator& a) {
    a.allocated_bytes_ += a.alignment_;
  }

  static void clear_cookie(FreeListAllocator& a, std::size_t offset) {
    a.nodes_[a.index_.at(offset)].cookie = nullptr;
  }
};

}  // namespace ca::mem

namespace ca::dm {

// Same idiom at the data-manager level: a friend of DataManager (and of
// Object/Region) that hands tests direct access to the in-flight transfer
// registry and the pin/primary state, so the dm.inflight and dm.pin
// invariants can be violated deliberately.  Every injector has a restore
// counterpart (or returns the previous value) so tests can put the manager
// back into a consistent state before teardown.
struct DataManagerTestPeer {
  static std::vector<DataManager::InflightTransfer>& inflight(
      DataManager& dm) {
    return dm.inflight_;
  }

  static void set_pin(Object& object, int count) {
    object.pin_count_.store(count);
  }

  /// Point the object's primary somewhere else (a bogus or freed region);
  /// returns the previous primary for restoration.
  static Region* swap_primary(Object& object, Region* bogus) {
    Region* prev = object.primary_;
    object.primary_ = bogus;
    return prev;
  }

  /// Corrupt a region's parent back-pointer; returns the previous parent.
  static Object* swap_region_parent(Region& region, Object* bogus) {
    Object* prev = region.parent_;
    region.parent_ = bogus;
    return prev;
  }

  /// Pretend device `dev` is mid-compaction (-1 to clear).
  static void set_defragmenting(DataManager& dm, int dev) {
    dm.defragmenting_.store(dev, std::memory_order_relaxed);
  }

  /// Skew tenant `t`'s resident-byte counter on `dev` by `delta` without
  /// touching any region -- the accounting drift dm.tenant.resident exists
  /// to catch (a lost rollback or double charge would look exactly like
  /// this).  Signed so tests can restore the counter afterwards.
  static void skew_tenant_resident(DataManager& dm, TenantId t,
                                   sim::DeviceId dev, std::ptrdiff_t delta) {
    auto& counter = dm.tenants_[t.value].resident[dev.value];
    if (delta >= 0) {
      counter.fetch_add(static_cast<std::size_t>(delta),
                        std::memory_order_relaxed);
    } else {
      counter.fetch_sub(static_cast<std::size_t>(-delta),
                        std::memory_order_relaxed);
    }
  }

  /// Drop the quota below what is already resident, bypassing the
  /// admission check -- the overrun state dm.tenant.quota exists to catch
  /// (a racy quota write or a missed reserve would leave exactly this).
  static void force_tenant_quota(DataManager& dm, TenantId t,
                                 sim::DeviceId dev, std::size_t bytes) {
    dm.tenants_[t.value].quota[dev.value].store(bytes,
                                                std::memory_order_relaxed);
  }
};

}  // namespace ca::dm

namespace ca::mem {
namespace {

constexpr std::size_t kHeap = 64 * util::KiB;

class AllocatorAuditFixture : public ::testing::Test {
 protected:
  AllocatorAuditFixture() : alloc_(kHeap) {
    // A representative heap: live blocks with free holes between them.
    a_ = *alloc_.allocate(4096);
    b_ = *alloc_.allocate(8192);
    c_ = *alloc_.allocate(1024);
    d_ = *alloc_.allocate(2048);
    alloc_.free(b_);
  }

  FreeListAllocator alloc_;
  std::size_t a_ = 0, b_ = 0, c_ = 0, d_ = 0;
};

TEST_F(AllocatorAuditFixture, CleanHeapAuditsClean) {
  const auto report = audit::verify(alloc_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AllocatorAuditFixture, DroppedFreeIndexEntryIsNamed) {
  AllocatorTestPeer::drop_free_index_entry(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.free-index")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ForgedFreeIndexEntryIsNamed) {
  AllocatorTestPeer::forge_free_index_entry(alloc_, 4096, a_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.free-index")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, MissedCoalesceIsNamed) {
  AllocatorTestPeer::split_free_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.coalesced")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, TilingGapIsNamed) {
  AllocatorTestPeer::shrink_allocated_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.tiling")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, CounterDriftIsNamed) {
  AllocatorTestPeer::drift_allocated_bytes(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.accounting")) << report.to_string();
}

// --- binned-heap invariants (red-before/green-after) ------------------------

TEST_F(AllocatorAuditFixture, UnbinnedFreeBlockIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());  // green before corruption
  AllocatorTestPeer::drop_free_index_entry(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-membership")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, MisfiledFreeBlockIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::misfile_free_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-membership")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ForgedBinEntryIsNamedAsMembership) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::forge_free_index_entry(alloc_, 4096, a_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-membership")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, OutOfOrderBinIsNamed) {
  // Two free blocks of the same size land in one exact bin: allocate five
  // same-size blocks and free two non-adjacent ones.
  std::size_t off[5];
  for (auto& o : off) o = *alloc_.allocate(1024);
  alloc_.free(off[1]);
  alloc_.free(off[3]);
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::reorder_bin_entries(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-order")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ClearedBinBitmapBitIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::clear_occupied_bin_bit(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-bitmap")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, StrayBinBitmapBitIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::set_stray_bin_bit(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.bin-bitmap")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, TornNeighbourLinkIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::corrupt_prev_link(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.boundary-tags")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, DroppedStartBitIsNamed) {
  ASSERT_TRUE(audit::verify(alloc_).ok());
  AllocatorTestPeer::clear_start_bit_of_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.boundary-tags")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ReportListsEveryViolationNotJustTheFirst) {
  AllocatorTestPeer::drop_free_index_entry(alloc_);
  AllocatorTestPeer::drift_allocated_bytes(alloc_);
  const auto report = audit::verify(alloc_);
  EXPECT_GE(report.violations().size(), 2u);
  EXPECT_TRUE(report.has("alloc.free-index"));
  EXPECT_TRUE(report.has("alloc.accounting"));
}

// --- data-manager level -----------------------------------------------------

class DmAuditFixture : public ::testing::Test {
 protected:
  DmAuditFixture()
      : platform_(sim::Platform::cascade_lake_scaled(1 * util::MiB,
                                                     4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(DmAuditFixture, FreshManagerAuditsClean) {
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(DmAuditFixture, PopulatedManagerAuditsClean) {
  dm::Object* obj = dm_.create_object(4096, "x");
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  ASSERT_NE(slow, nullptr);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(fast, nullptr);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  dm_.setprimary(*obj, *fast);
  dm_.markdirty(*fast);
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, ClearedCookieIsNamed) {
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(r, nullptr);
  auto& alloc = const_cast<FreeListAllocator&>(dm_.allocator(sim::kFast));
  AllocatorTestPeer::clear_cookie(alloc, r->offset());
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.block-cookie")) << report.to_string();
  // The same block no longer round-trips from the region side either.
  EXPECT_TRUE(report.has("dm.region-roundtrip")) << report.to_string();
}

TEST_F(DmAuditFixture, TwoDirtySiblingsAreNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  // Divergence: both copies claim to have been modified.
  dm_.markdirty(*slow);
  dm_.markdirty(*fast);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.dirty-siblings")) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, DirtyNonPrimarySiblingIsNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  dm_.markdirty(*fast);  // fast is not the primary
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.dirty-siblings")) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, PinnedObjectWithoutPrimaryIsNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm_.pin(*obj);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, InflightTransferAuditsClean) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmAuditFixture, InflightTransferToDeadRegionIsNamed) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  auto& inflight = dm::DataManagerTestPeer::inflight(dm_);
  ASSERT_EQ(inflight.size(), 1u);
  // Corruption: the registry keeps pointing at a Region the manager no
  // longer owns -- the bug class the registry scrubbing in free() prevents.
  dm::Region dead;
  dm::Region* saved = inflight[0].dst;
  inflight[0].dst = &dead;
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.inflight")) << report.to_string();
  inflight[0].dst = saved;  // restore before teardown joins/frees
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmAuditFixture, InflightEntryWithoutHandleIsNamed) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  auto& inflight = dm::DataManagerTestPeer::inflight(dm_);
  ASSERT_EQ(inflight.size(), 1u);
  dm_.engine().drain();  // the real copy must finish before we drop the handle
  mem::Transfer saved = inflight[0].transfer;
  inflight[0].transfer = mem::Transfer{};
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.inflight")) << report.to_string();
  inflight[0].transfer = saved;
  dm_.free(src);
  dm_.free(dst);
}

// --- dm.pin invariants (red-before/green-after) -----------------------------

TEST_F(DmAuditFixture, NegativePinCountIsNamed) {
  dm::Object* obj = dm_.create_object(4096, "neg");
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  dm_.setprimary(*obj, *r);
  ASSERT_TRUE(audit::verify(dm_).ok());  // green before corruption
  dm::DataManagerTestPeer::set_pin(*obj, -1);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  EXPECT_NE(report.to_string().find("negative pin count"), std::string::npos);
  dm::DataManagerTestPeer::set_pin(*obj, 0);
  EXPECT_TRUE(audit::verify(dm_).ok());  // green after restore
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, OrphanedPinnedPrimaryIsNamed) {
  dm::Object* obj = dm_.create_object(4096, "orphaned");
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  dm_.setprimary(*obj, *r);
  dm_.pin(*obj);
  ASSERT_TRUE(audit::verify(dm_).ok());
  // Corruption: the pinned object's primary points at storage the manager
  // does not own -- the kernel would dereference a dangling pointer.
  dm::Region dead;
  dm::Region* saved = dm::DataManagerTestPeer::swap_primary(*obj, &dead);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  EXPECT_NE(report.to_string().find("orphaned"), std::string::npos);
  dm::DataManagerTestPeer::swap_primary(*obj, saved);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, PinnedPrimaryParentMismatchIsNamed) {
  dm::Object* obj = dm_.create_object(4096, "reparented");
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  dm_.setprimary(*obj, *r);
  dm_.pin(*obj);
  ASSERT_TRUE(audit::verify(dm_).ok());
  dm::Object* other = dm_.create_object(4096, "other");
  dm::Object* saved = dm::DataManagerTestPeer::swap_region_parent(*r, other);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  EXPECT_NE(report.to_string().find("back-pointer"), std::string::npos);
  dm::DataManagerTestPeer::swap_region_parent(*r, saved);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.unpin(*obj);
  dm_.destroy_object(other);
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, PinnedObjectOnDefragmentingDeviceIsNamed) {
  dm::Object* obj = dm_.create_object(4096, "compacting");
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  dm_.setprimary(*obj, *r);
  dm_.pin(*obj);
  ASSERT_TRUE(audit::verify(dm_).ok());
  // Corruption: compaction is (claimed to be) running on the device this
  // pinned object lives on -- its kernel-held pointer is being memmoved.
  dm::DataManagerTestPeer::set_defragmenting(
      dm_, static_cast<int>(sim::kFast.value));
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  EXPECT_NE(report.to_string().find("during defragment"), std::string::npos);
  // A pinned object on the OTHER device is fine while kFast compacts.
  dm::DataManagerTestPeer::set_defragmenting(
      dm_, static_cast<int>(sim::kSlow.value));
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm::DataManagerTestPeer::set_defragmenting(dm_, -1);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

// --- dm.tenant.* invariants -------------------------------------------------

TEST_F(DmAuditFixture, SkewedTenantResidentIsNamed) {
  const dm::TenantId t = dm_.register_tenant("audited");
  dm::Region* r = dm_.allocate(sim::kFast, 4096, t);
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(audit::verify(dm_).ok());
  // Corruption: the counter drifts from the live-region sum, as a lost
  // quota rollback or a double charge would leave it.
  dm::DataManagerTestPeer::skew_tenant_resident(dm_, t, sim::kFast, 4096);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.tenant.resident")) << report.to_string();
  // Restored, the books balance again.
  dm::DataManagerTestPeer::skew_tenant_resident(dm_, t, sim::kFast, -4096);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.free(r);
  EXPECT_TRUE(audit::verify(dm_).ok());
}

TEST_F(DmAuditFixture, UnderchargedTenantResidentIsNamed) {
  const dm::TenantId t = dm_.register_tenant("undercharged");
  dm::Region* r = dm_.allocate(sim::kFast, 4096, t);
  ASSERT_NE(r, nullptr);
  // The opposite drift: bytes resident on the device that the tenant's
  // counter does not account for (a missed charge).
  dm::DataManagerTestPeer::skew_tenant_resident(dm_, t, sim::kFast, -4096);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.tenant.resident")) << report.to_string();
  dm::DataManagerTestPeer::skew_tenant_resident(dm_, t, sim::kFast, 4096);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.free(r);
}

TEST_F(DmAuditFixture, TenantQuotaOverrunIsNamed) {
  const dm::TenantId t = dm_.register_tenant("capped");
  dm::Region* r = dm_.allocate(sim::kFast, 8192, t);
  ASSERT_NE(r, nullptr);
  // The sanctioned setter refuses a quota below current residency...
  EXPECT_THROW(dm_.set_tenant_quota(t, sim::kFast, 4096), InternalError);
  EXPECT_TRUE(audit::verify(dm_).ok());
  // ...so bypass it: the overrun state a racy quota write or a missed
  // admission reserve would leave behind.
  dm::DataManagerTestPeer::force_tenant_quota(dm_, t, sim::kFast, 4096);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.tenant.quota")) << report.to_string();
  dm::DataManagerTestPeer::force_tenant_quota(dm_, t, sim::kFast, 0);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.free(r);
}

TEST_F(DmAuditFixture, QuotaDenialLeavesBooksBalanced) {
  const dm::TenantId t = dm_.register_tenant("denied");
  dm_.set_tenant_quota(t, sim::kFast, 8192);
  dm::Region* r = dm_.allocate(sim::kFast, 8192, t);
  ASSERT_NE(r, nullptr);
  // Over quota: refused, counted, and -- the audit point -- the reserve is
  // rolled back so the accounting still matches the live regions.
  EXPECT_EQ(dm_.allocate(sim::kFast, 4096, t), nullptr);
  EXPECT_EQ(dm_.tenant_stats(t).quota_denials, 1u);
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.free(r);
  EXPECT_TRUE(audit::verify(dm_).ok());
}

#if defined(CA_PTRPROV_ENABLED)

// --- prov.* invariants (need the ptrprov runtime half) ----------------------

TEST_F(DmAuditFixture, StaleSpanAfterRelocationIsNamed) {
  ptrprov::reset_for_testing();
  dm::Object* hole = dm_.create_object(64 * util::KiB, "hole");
  dm_.setprimary(*hole, *dm_.allocate(sim::kFast, 64 * util::KiB));
  dm::Object* moved = dm_.create_object(64 * util::KiB, "moved");
  dm_.setprimary(*moved, *dm_.allocate(sim::kFast, 64 * util::KiB));

  dm::PinnedSpan span = dm_.access(*moved);
  ASSERT_TRUE(audit::verify(dm_).ok());  // live span, intact pin: green
  dm_.destroy_object(hole);
  dm::DataManagerTestPeer::set_pin(*moved, 0);  // the staged bug
  dm_.defragment(sim::kFast);                   // slides `moved` down
  dm::DataManagerTestPeer::set_pin(*moved, 1);

  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("prov.stale")) << report.to_string();
  EXPECT_NE(report.to_string().find("relocated by defragment"),
            std::string::npos);

  span.reset();  // span gone: the audit is green again
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.destroy_object(moved);
}

TEST_F(DmAuditFixture, SpanOnFreedRegionIsNamed) {
  ptrprov::reset_for_testing();
  dm::Object* obj = dm_.create_object(64 * util::KiB, "freed");
  dm::Region* r = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.setprimary(*obj, *r);

  dm::PinnedSpan span = dm_.access(*obj);
  ASSERT_TRUE(audit::verify(dm_).ok());
  dm::DataManagerTestPeer::set_pin(*obj, 0);  // the staged bug
  dm_.free(r);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("prov.stale")) << report.to_string();
  EXPECT_NE(report.to_string().find("region freed by free"),
            std::string::npos);

  dm::DataManagerTestPeer::set_pin(*obj, 1);  // so ~PinnedSpan is sane
  span.reset();
  EXPECT_TRUE(audit::verify(dm_).ok());
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, UnpinnedObjectWithLiveSpanIsNamed) {
  ptrprov::reset_for_testing();
  dm::Object* obj = dm_.create_object(64 * util::KiB, "dropped");
  dm_.setprimary(*obj, *dm_.allocate(sim::kFast, 64 * util::KiB));

  dm::PinnedSpan span = dm_.access(*obj);
  ASSERT_TRUE(audit::verify(dm_).ok());
  dm::DataManagerTestPeer::set_pin(*obj, 0);  // pin dropped under the span
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("prov.unpinned")) << report.to_string();

  dm::DataManagerTestPeer::set_pin(*obj, 1);
  EXPECT_TRUE(audit::verify(dm_).ok());
  span.reset();
  dm_.destroy_object(obj);
}

#endif  // CA_PTRPROV_ENABLED

TEST_F(DmAuditFixture, ScopedAbortHookInstallsAndRemovesTheHook) {
  EXPECT_EQ(dm::audit_hook(), nullptr);
  {
    audit::ScopedAbortHook hook;
    EXPECT_NE(dm::audit_hook(), nullptr);
    // Exercise mutation boundaries with the hook installed: on a healthy
    // manager this must be a no-op regardless of whether the dm library was
    // compiled with CA_AUDIT_ENABLED.
    dm::Object* obj = dm_.create_object(1024);
    dm::Region* r = dm_.allocate(sim::kFast, 1024);
    dm_.setprimary(*obj, *r);
    dm_.destroy_object(obj);
  }
  EXPECT_EQ(dm::audit_hook(), nullptr);
}

}  // namespace
}  // namespace ca::mem
