// audit::verify detection tests: a clean system audits clean, and each
// class of deliberate corruption -- injected through the test-only
// AllocatorTestPeer seam -- is caught under its catalogued invariant name.
#include <gtest/gtest.h>

#include <cstddef>

#include "audit/audit.hpp"
#include "dm/audit_hook.hpp"
#include "dm/data_manager.hpp"
#include "mem/freelist_allocator.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"

namespace ca::mem {

// The deliberately-broken-allocator hook: a friend of FreeListAllocator
// (declared in the header, defined only here) that mutates private state in
// ways the public API never would, so the audit's detection power can be
// proven test by test.
struct AllocatorTestPeer {
  static void drop_free_index_entry(FreeListAllocator& a) {
    a.free_index_.erase(a.free_index_.begin());
  }
  static void forge_free_index_entry(FreeListAllocator& a, std::size_t size,
                                     std::size_t offset) {
    a.free_index_.insert({size, offset});
  }
  /// Split the first free block into two adjacent free blocks (both indexed,
  /// so only the coalescing invariant breaks).
  static void split_free_block(FreeListAllocator& a) {
    for (auto it = a.blocks_.begin(); it != a.blocks_.end(); ++it) {
      if (it->second.allocated || it->second.size < 2 * a.alignment_) continue;
      const std::size_t off = it->first;
      const std::size_t size = it->second.size;
      const std::size_t half = a.alignment_ * (size / a.alignment_ / 2);
      a.index_erase(off, size);
      it->second.size = half;
      a.index_insert(off, half);
      a.blocks_.emplace(off + half,
                        FreeListAllocator::Block{size - half, false, nullptr});
      a.index_insert(off + half, size - half);
      return;
    }
    FAIL() << "no free block large enough to split";
  }
  /// Shrink an allocated block without fixing its neighbours (tiling gap).
  static void shrink_allocated_block(FreeListAllocator& a) {
    for (auto& [off, b] : a.blocks_) {
      if (!b.allocated || b.size < 2 * a.alignment_) continue;
      b.size -= a.alignment_;
      a.allocated_bytes_ -= a.alignment_;
      return;
    }
    FAIL() << "no allocated block large enough to shrink";
  }
  static void drift_allocated_bytes(FreeListAllocator& a) {
    a.allocated_bytes_ += a.alignment_;
  }
  static void clear_cookie(FreeListAllocator& a, std::size_t offset) {
    a.blocks_.at(offset).cookie = nullptr;
  }
};

}  // namespace ca::mem

namespace ca::dm {

// Same idiom at the data-manager level: a friend of DataManager that hands
// tests direct access to the in-flight transfer registry so the dm.inflight
// invariants can be violated deliberately.
struct DataManagerTestPeer {
  static std::vector<DataManager::InflightTransfer>& inflight(
      DataManager& dm) {
    return dm.inflight_;
  }
};

}  // namespace ca::dm

namespace ca::mem {
namespace {

constexpr std::size_t kHeap = 64 * util::KiB;

class AllocatorAuditFixture : public ::testing::Test {
 protected:
  AllocatorAuditFixture() : alloc_(kHeap) {
    // A representative heap: live blocks with free holes between them.
    a_ = *alloc_.allocate(4096);
    b_ = *alloc_.allocate(8192);
    c_ = *alloc_.allocate(1024);
    d_ = *alloc_.allocate(2048);
    alloc_.free(b_);
  }

  FreeListAllocator alloc_;
  std::size_t a_ = 0, b_ = 0, c_ = 0, d_ = 0;
};

TEST_F(AllocatorAuditFixture, CleanHeapAuditsClean) {
  const auto report = audit::verify(alloc_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(AllocatorAuditFixture, DroppedFreeIndexEntryIsNamed) {
  AllocatorTestPeer::drop_free_index_entry(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.free-index")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ForgedFreeIndexEntryIsNamed) {
  AllocatorTestPeer::forge_free_index_entry(alloc_, 4096, a_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.free-index")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, MissedCoalesceIsNamed) {
  AllocatorTestPeer::split_free_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.coalesced")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, TilingGapIsNamed) {
  AllocatorTestPeer::shrink_allocated_block(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.tiling")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, CounterDriftIsNamed) {
  AllocatorTestPeer::drift_allocated_bytes(alloc_);
  const auto report = audit::verify(alloc_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("alloc.accounting")) << report.to_string();
}

TEST_F(AllocatorAuditFixture, ReportListsEveryViolationNotJustTheFirst) {
  AllocatorTestPeer::drop_free_index_entry(alloc_);
  AllocatorTestPeer::drift_allocated_bytes(alloc_);
  const auto report = audit::verify(alloc_);
  EXPECT_GE(report.violations().size(), 2u);
  EXPECT_TRUE(report.has("alloc.free-index"));
  EXPECT_TRUE(report.has("alloc.accounting"));
}

// --- data-manager level -----------------------------------------------------

class DmAuditFixture : public ::testing::Test {
 protected:
  DmAuditFixture()
      : platform_(sim::Platform::cascade_lake_scaled(1 * util::MiB,
                                                     4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
};

TEST_F(DmAuditFixture, FreshManagerAuditsClean) {
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST_F(DmAuditFixture, PopulatedManagerAuditsClean) {
  dm::Object* obj = dm_.create_object(4096, "x");
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  ASSERT_NE(slow, nullptr);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(fast, nullptr);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  dm_.setprimary(*obj, *fast);
  dm_.markdirty(*fast);
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, ClearedCookieIsNamed) {
  dm::Region* r = dm_.allocate(sim::kFast, 4096);
  ASSERT_NE(r, nullptr);
  auto& alloc = const_cast<FreeListAllocator&>(dm_.allocator(sim::kFast));
  AllocatorTestPeer::clear_cookie(alloc, r->offset());
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.block-cookie")) << report.to_string();
  // The same block no longer round-trips from the region side either.
  EXPECT_TRUE(report.has("dm.region-roundtrip")) << report.to_string();
}

TEST_F(DmAuditFixture, TwoDirtySiblingsAreNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  // Divergence: both copies claim to have been modified.
  dm_.markdirty(*slow);
  dm_.markdirty(*fast);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.dirty-siblings")) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, DirtyNonPrimarySiblingIsNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm::Region* slow = dm_.allocate(sim::kSlow, 4096);
  dm_.setprimary(*obj, *slow);
  dm::Region* fast = dm_.allocate(sim::kFast, 4096);
  dm_.link(*slow, *fast);
  dm_.copyto(*fast, *slow);
  dm_.markdirty(*fast);  // fast is not the primary
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.dirty-siblings")) << report.to_string();
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, PinnedObjectWithoutPrimaryIsNamed) {
  dm::Object* obj = dm_.create_object(4096);
  dm_.pin(*obj);
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.pin")) << report.to_string();
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

TEST_F(DmAuditFixture, InflightTransferAuditsClean) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  ASSERT_EQ(dm_.inflight_transfers().size(), 1u);
  const auto report = audit::verify(dm_);
  EXPECT_TRUE(report.ok()) << report.to_string();
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmAuditFixture, InflightTransferToDeadRegionIsNamed) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  auto& inflight = dm::DataManagerTestPeer::inflight(dm_);
  ASSERT_EQ(inflight.size(), 1u);
  // Corruption: the registry keeps pointing at a Region the manager no
  // longer owns -- the bug class the registry scrubbing in free() prevents.
  dm::Region dead;
  dm::Region* saved = inflight[0].dst;
  inflight[0].dst = &dead;
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.inflight")) << report.to_string();
  inflight[0].dst = saved;  // restore before teardown joins/frees
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmAuditFixture, InflightEntryWithoutHandleIsNamed) {
  dm::Region* src = dm_.allocate(sim::kSlow, 64 * util::KiB);
  dm::Region* dst = dm_.allocate(sim::kFast, 64 * util::KiB);
  dm_.copyto_async(*dst, *src);
  auto& inflight = dm::DataManagerTestPeer::inflight(dm_);
  ASSERT_EQ(inflight.size(), 1u);
  dm_.engine().drain();  // the real copy must finish before we drop the handle
  mem::Transfer saved = inflight[0].transfer;
  inflight[0].transfer = mem::Transfer{};
  const auto report = audit::verify(dm_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.has("dm.inflight")) << report.to_string();
  inflight[0].transfer = saved;
  dm_.free(src);
  dm_.free(dst);
}

TEST_F(DmAuditFixture, ScopedAbortHookInstallsAndRemovesTheHook) {
  EXPECT_EQ(dm::audit_hook(), nullptr);
  {
    audit::ScopedAbortHook hook;
    EXPECT_NE(dm::audit_hook(), nullptr);
    // Exercise mutation boundaries with the hook installed: on a healthy
    // manager this must be a no-op regardless of whether the dm library was
    // compiled with CA_AUDIT_ENABLED.
    dm::Object* obj = dm_.create_object(1024);
    dm::Region* r = dm_.allocate(sim::kFast, 1024);
    dm_.setprimary(*obj, *r);
    dm_.destroy_object(obj);
  }
  EXPECT_EQ(dm::audit_hook(), nullptr);
}

}  // namespace
}  // namespace ca::mem
