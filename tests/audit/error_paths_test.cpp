// Error-path coverage for the data-management API: every rejected operation
// must throw UsageError, leave the manager's state unchanged, and audit
// clean afterwards.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "audit/audit.hpp"
#include "dm/data_manager.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::dm {
namespace {

class ErrorPathFixture : public ::testing::Test {
 protected:
  ErrorPathFixture()
      : platform_(sim::Platform::cascade_lake_scaled(1 * util::MiB,
                                                     4 * util::MiB)),
        dm_(platform_, clock_, counters_) {}

  void expect_clean() {
    const auto report = audit::verify(dm_);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }

  /// An object with a slow primary and a fast linked sibling.
  Object* two_region_object(std::size_t size = 4096) {
    Object* obj = dm_.create_object(size);
    Region* slow = dm_.allocate(sim::kSlow, size);
    dm_.setprimary(*obj, *slow);
    Region* fast = dm_.allocate(sim::kFast, size);
    dm_.link(*slow, *fast);
    dm_.copyto(*fast, *slow);
    return obj;
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  DataManager dm_;
};

TEST_F(ErrorPathFixture, DestroyObjectOnPinnedObjectIsRejected) {
  Object* obj = two_region_object();
  dm_.pin(*obj);
  EXPECT_THROW(dm_.destroy_object(obj), UsageError);
  // Nothing was torn down by the failed destroy.
  EXPECT_EQ(dm_.live_objects(), 1u);
  EXPECT_EQ(obj->region_count(), 2u);
  EXPECT_TRUE(obj->pinned());
  expect_clean();
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
  EXPECT_EQ(dm_.live_objects(), 0u);
  EXPECT_EQ(dm_.live_regions(), 0u);
  expect_clean();
}

TEST_F(ErrorPathFixture, FreeOfLinkedPrimaryWithSiblingsIsRejected) {
  Object* obj = two_region_object();
  Region* primary = dm_.getprimary(*obj);
  ASSERT_NE(primary, nullptr);
  EXPECT_THROW(dm_.free(primary), UsageError);
  EXPECT_EQ(dm_.getprimary(*obj), primary);
  EXPECT_EQ(obj->region_count(), 2u);
  expect_clean();
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, FreeOfSolePrimaryOfPinnedObjectIsRejected) {
  Object* obj = dm_.create_object(4096);
  Region* r = dm_.allocate(sim::kFast, 4096);
  dm_.setprimary(*obj, *r);
  dm_.pin(*obj);
  EXPECT_THROW(dm_.free(r), UsageError);
  EXPECT_EQ(dm_.getprimary(*obj), r);
  expect_clean();
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, UnlinkOfThePrimaryIsRejected) {
  Object* obj = two_region_object();
  Region* primary = dm_.getprimary(*obj);
  EXPECT_THROW(dm_.unlink(*primary), UsageError);
  EXPECT_EQ(primary->parent(), obj);
  EXPECT_EQ(obj->region_count(), 2u);
  expect_clean();
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, UnlinkOfAnOrphanIsRejected) {
  Region* r = dm_.allocate(sim::kFast, 4096);
  EXPECT_THROW(dm_.unlink(*r), UsageError);
  expect_clean();
  dm_.free(r);
}

TEST_F(ErrorPathFixture, CopyToWithMismatchedSizesIsRejected) {
  Region* big = dm_.allocate(sim::kSlow, 8192);
  Region* small = dm_.allocate(sim::kFast, 1024);
  EXPECT_THROW(dm_.copyto(*small, *big), UsageError);
  EXPECT_THROW(dm_.copyto_async(*small, *big), UsageError);
  // A larger destination is fine (regions only need to *hold* the bytes).
  EXPECT_NO_THROW(dm_.copyto(*big, *small));
  expect_clean();
  dm_.free(big);
  dm_.free(small);
}

TEST_F(ErrorPathFixture, SetPrimaryOnPinnedObjectIsRejected) {
  Object* obj = two_region_object();
  Region* secondary = nullptr;
  for (std::uint32_t d = 0; d < dm_.device_count(); ++d) {
    Region* r = obj->region_on({d});
    if (r != nullptr && r != dm_.getprimary(*obj)) secondary = r;
  }
  ASSERT_NE(secondary, nullptr);
  dm_.pin(*obj);
  EXPECT_THROW(dm_.setprimary(*obj, *secondary), UsageError);
  EXPECT_NE(dm_.getprimary(*obj), secondary);
  expect_clean();
  dm_.unpin(*obj);
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, SetPrimaryOfTooSmallOrForeignRegionIsRejected) {
  Object* obj = dm_.create_object(8192);
  Region* small = dm_.allocate(sim::kFast, 1024);
  EXPECT_THROW(dm_.setprimary(*obj, *small), UsageError);
  EXPECT_EQ(small->parent(), nullptr);

  Object* other = dm_.create_object(1024);
  dm_.setprimary(*other, *small);
  EXPECT_THROW(dm_.setprimary(*obj, *small), UsageError);
  expect_clean();
  dm_.destroy_object(other);
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, LinkRejectsSecondRegionOnSameDevice) {
  Object* obj = dm_.create_object(1024);
  Region* a = dm_.allocate(sim::kFast, 1024);
  dm_.setprimary(*obj, *a);
  Region* b = dm_.allocate(sim::kFast, 1024);
  EXPECT_THROW(dm_.link(*a, *b), UsageError);
  EXPECT_EQ(b->parent(), nullptr);
  expect_clean();
  dm_.free(b);
  dm_.destroy_object(obj);
}

TEST_F(ErrorPathFixture, DoubleFreeAndUnknownHandlesAreRejected) {
  Region* r = dm_.allocate(sim::kFast, 1024);
  dm_.free(r);
  EXPECT_THROW(dm_.free(r), UsageError);
  Object* obj = dm_.create_object(1024);
  dm_.destroy_object(obj);
  EXPECT_THROW(dm_.destroy_object(obj), UsageError);
  expect_clean();
}

TEST_F(ErrorPathFixture, ZeroSizedRequestsAreRejected) {
  EXPECT_THROW(dm_.create_object(0), UsageError);
  EXPECT_THROW((void)dm_.allocate(sim::kFast, 0), UsageError);
  expect_clean();
}

TEST_F(ErrorPathFixture, OversizedAllocationFailsCleanly) {
  // Regression: align_up used to wrap for near-SIZE_MAX requests, carving a
  // zero-byte block and corrupting the free index (see
  // FreeListAllocator::allocate).
  EXPECT_EQ(dm_.allocate(sim::kFast,
                         std::numeric_limits<std::size_t>::max()),
            nullptr);
  EXPECT_EQ(dm_.allocate(sim::kFast,
                         std::numeric_limits<std::size_t>::max() - 63),
            nullptr);
  EXPECT_EQ(dm_.allocate(sim::kFast, dm_.capacity(sim::kFast) + 64), nullptr);
  expect_clean();
}

}  // namespace
}  // namespace ca::dm
