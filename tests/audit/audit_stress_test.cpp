// Randomized audit stress harness: replays thousands of seeded
// create/link/copyto/evictfrom/defrag/destroy sequences against a naive
// reference model and runs the full invariant audit after every step.
//
// The reference model is deliberately dumb -- flat maps, no sharing with the
// implementation -- so any disagreement indicates a bug in the data manager
// or allocator, not in the model.  Illegal operations are interleaved on
// purpose: every UsageError must leave the manager unchanged and auditing
// clean (strong exception safety at the API surface).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "audit/audit.hpp"
#include "dm/data_manager.hpp"
#include "mem/freelist_allocator.hpp"
#include "sim/platform.hpp"
#include "util/align.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ca {
namespace {

constexpr std::size_t kAlign = 64;  // DataManager heap alignment

struct ModelObject {
  std::size_t size = 0;
  int pins = 0;
  dm::Region* primary = nullptr;
  std::set<dm::Region*> regions;
};

struct ModelRegion {
  std::uint32_t device = 0;
  std::size_t size = 0;
  dm::Object* parent = nullptr;  // nullptr: orphan
};

class StressHarness {
 public:
  StressHarness(std::uint64_t seed, std::size_t fast_bytes,
                std::size_t slow_bytes)
      : platform_(sim::Platform::cascade_lake_scaled(fast_bytes, slow_bytes)),
        dm_(platform_, clock_, counters_),
        rng_(seed) {}

  void run(std::size_t steps) {
    for (std::size_t i = 0; i < steps; ++i) {
      step();
      audit_and_reconcile(i);
      if (::testing::Test::HasFatalFailure()) return;
    }
    teardown();
    audit_and_reconcile(steps);
  }

 private:
  // --- randomness helpers --------------------------------------------------

  std::size_t uniform(std::size_t lo, std::size_t hi) {  // inclusive
    return lo + rng_() % (hi - lo + 1);
  }
  bool chance(std::size_t percent) { return rng_() % 100 < percent; }

  template <typename T>
  T pick(const std::vector<T>& v) {
    return v[rng_() % v.size()];
  }

  std::size_t random_size() {
    // Power-law-ish sizes: mostly small, occasionally near-heap-sized.
    switch (rng_() % 4) {
      case 0:
        return uniform(1, 512);
      case 1:
        return uniform(512, 8 * util::KiB);
      case 2:
        return uniform(8 * util::KiB, 64 * util::KiB);
      default:
        return uniform(64 * util::KiB, 256 * util::KiB);
    }
  }

  sim::DeviceId random_device() {
    return {static_cast<std::uint32_t>(rng_() % dm_.device_count())};
  }

  // --- model queries -------------------------------------------------------

  std::vector<dm::Object*> objects() const {
    std::vector<dm::Object*> out;
    for (const auto& [obj, m] : model_objects_) out.push_back(obj);
    return out;
  }

  std::vector<dm::Region*> orphans() const {
    std::vector<dm::Region*> out;
    for (const auto& [r, m] : model_regions_) {
      if (m.parent == nullptr) out.push_back(r);
    }
    return out;
  }

  // --- operations ----------------------------------------------------------

  void step() {
    switch (rng_() % 16) {
      case 0:
      case 1:
        op_create_object();
        break;
      case 2:
      case 3:
        op_allocate_orphan();
        break;
      case 4:
        op_attach_primary();
        break;
      case 5:
        op_link_sibling();
        break;
      case 6:
        op_copy_between_siblings();
        break;
      case 7:
        op_promote_sibling();
        break;
      case 8:
        op_markdirty_primary();
        break;
      case 9:
        op_unlink_sibling();
        break;
      case 10:
        op_free_region();
        break;
      case 11:
        op_destroy_object();
        break;
      case 12:
        op_pin_unpin();
        break;
      case 13:
        op_evictfrom();
        break;
      case 14:
        op_defragment();
        break;
      default:
        op_illegal();
        break;
    }
  }

  void op_create_object() {
    dm::Object* obj = dm_.create_object(random_size(), "o" + std::to_string(serial_++));
    model_objects_[obj] = ModelObject{obj->size(), 0, nullptr, {}};
  }

  dm::Region* allocate_tracked(sim::DeviceId dev, std::size_t size) {
    dm::Region* r = dm_.allocate(dev, size);
    if (r != nullptr) {
      model_regions_[r] = ModelRegion{dev.value, size, nullptr};
      std::memset(r->data(), static_cast<int>(rng_() % 256), size);
    }
    return r;
  }

  void op_allocate_orphan() { allocate_tracked(random_device(), random_size()); }

  // Attach an exact-size orphan to a primary-less object (Listing-1 path).
  void op_attach_primary() {
    std::vector<dm::Object*> candidates;
    for (const auto& [obj, m] : model_objects_) {
      if (m.primary == nullptr && m.pins == 0) candidates.push_back(obj);
    }
    if (candidates.empty()) return;
    dm::Object* obj = pick(candidates);
    dm::Region* r = allocate_tracked(random_device(), obj->size());
    if (r == nullptr) return;
    dm_.setprimary(*obj, *r);
    auto& m = model_objects_.at(obj);
    m.primary = r;
    m.regions.insert(r);
    model_regions_.at(r).parent = obj;
  }

  void op_link_sibling() {
    std::vector<dm::Object*> candidates;
    for (const auto& [obj, m] : model_objects_) {
      if (m.primary != nullptr && m.regions.size() < dm_.device_count()) {
        candidates.push_back(obj);
      }
    }
    if (candidates.empty()) return;
    dm::Object* obj = pick(candidates);
    auto& m = model_objects_.at(obj);
    // A device without a region for this object yet.
    std::vector<std::uint32_t> free_devices;
    for (std::uint32_t d = 0; d < dm_.device_count(); ++d) {
      if (obj->region_on({d}) == nullptr) free_devices.push_back(d);
    }
    if (free_devices.empty()) return;
    const sim::DeviceId dev{pick(free_devices)};
    dm::Region* r = allocate_tracked(dev, obj->size());
    if (r == nullptr) return;
    dm_.link(*m.primary, *r);
    dm_.copyto(*r, *m.primary);  // siblings synchronized, both clean
    m.regions.insert(r);
    model_regions_.at(r).parent = obj;
  }

  void op_copy_between_siblings() {
    for (const auto& [obj, m] : model_objects_) {
      if (m.regions.size() < 2) continue;
      std::vector<dm::Region*> rs(m.regions.begin(), m.regions.end());
      dm::Region* dst = pick(rs);
      dm::Region* src = m.primary;
      if (dst == src) continue;
      if (chance(50)) {
        dm_.copyto(*dst, *src);
      } else {
        dm_.copyto_async(*dst, *src);
        if (chance(70)) dm_.wait_ready(*dst);
      }
      return;
    }
  }

  // Switch the primary to a sibling, synchronizing first if dirty (the
  // policy-layer discipline the audit's dirty-sibling rule encodes).
  void op_promote_sibling() {
    for (const auto& [obj, m] : model_objects_) {
      if (m.regions.size() < 2 || m.pins > 0) continue;
      std::vector<dm::Region*> rs(m.regions.begin(), m.regions.end());
      dm::Region* target = pick(rs);
      if (target == m.primary) continue;
      if (dm_.isdirty(*m.primary)) dm_.copyto(*target, *m.primary);
      dm_.setprimary(*obj, *target);
      model_objects_.at(obj).primary = target;
      return;
    }
  }

  void op_markdirty_primary() {
    for (const auto& [obj, m] : model_objects_) {
      if (m.primary == nullptr) continue;
      if (!chance(60)) continue;
      dm_.markdirty(*m.primary);
      std::memset(m.primary->data(), static_cast<int>(rng_() % 256),
                  std::min<std::size_t>(m.primary->size(), 8));
      return;
    }
  }

  void op_unlink_sibling() {
    for (const auto& [obj, m] : model_objects_) {
      for (dm::Region* r : m.regions) {
        if (r == m.primary) continue;
        dm_.unlink(*r);
        dm_.markclean(*r);  // an orphan has no siblings to be dirty against
        auto& mo = model_objects_.at(obj);
        mo.regions.erase(r);
        model_regions_.at(r).parent = nullptr;
        return;
      }
    }
  }

  void op_free_region() {
    // Prefer orphans; otherwise free a non-primary sibling or a sole
    // primary of an unpinned object.
    const auto os = orphans();
    if (!os.empty() && chance(70)) {
      dm::Region* r = pick(os);
      dm_.free(r);
      model_regions_.erase(r);
      return;
    }
    for (const auto& [obj, m] : model_objects_) {
      if (m.regions.empty()) continue;
      if (m.regions.size() == 1 && m.pins == 0) {
        dm::Region* r = *m.regions.begin();
        dm_.free(r);
        auto& mo = model_objects_.at(obj);
        mo.regions.clear();
        mo.primary = nullptr;
        model_regions_.erase(r);
        return;
      }
      for (dm::Region* r : m.regions) {
        if (r == m.primary) continue;
        dm_.free(r);
        model_objects_.at(obj).regions.erase(r);
        model_regions_.erase(r);
        return;
      }
    }
  }

  void op_destroy_object() {
    std::vector<dm::Object*> candidates;
    for (const auto& [obj, m] : model_objects_) {
      if (m.pins == 0) candidates.push_back(obj);
    }
    if (candidates.empty()) return;
    dm::Object* obj = pick(candidates);
    for (dm::Region* r : model_objects_.at(obj).regions) {
      model_regions_.erase(r);
    }
    model_objects_.erase(obj);
    dm_.destroy_object(obj);
  }

  void op_pin_unpin() {
    for (const auto& [obj, m] : model_objects_) {
      if (m.pins > 0 && chance(60)) {
        dm_.unpin(*obj);
        --model_objects_.at(obj).pins;
        return;
      }
      if (m.primary != nullptr && m.pins == 0 && chance(30)) {
        dm_.pin(*obj);
        ++model_objects_.at(obj).pins;
        return;
      }
    }
  }

  // Reclaim a random window: orphans are freed, unpinned non-primary
  // siblings are unlinked-and-freed, everything else refuses.
  void op_evictfrom() {
    const sim::DeviceId dev = random_device();
    const std::size_t cap = dm_.capacity(dev);
    const std::size_t want = uniform(kAlign, cap / 4);
    const std::size_t start = uniform(0, cap - 1);
    dm_.evictfrom(dev, start, want, [&](dm::Region& r) {
      auto& m = model_regions_.at(&r);
      if (m.parent == nullptr) {
        model_regions_.erase(&r);
        dm_.free(&r);
        return true;
      }
      auto& mo = model_objects_.at(m.parent);
      if (mo.pins > 0 || mo.primary == &r) return false;
      mo.regions.erase(&r);
      model_regions_.erase(&r);
      dm_.free(&r);  // linked non-primary: free detaches first
      return true;
    });
  }

  void op_defragment() {
    const sim::DeviceId dev = random_device();
    // defragment refuses devices holding pinned regions; skip those.
    for (const auto& [obj, m] : model_objects_) {
      if (m.pins > 0 && obj->region_on(dev) != nullptr) return;
    }
    dm_.defragment(dev);
  }

  // Every illegal call must throw UsageError and leave the system clean.
  void op_illegal() {
    switch (rng_() % 5) {
      case 0: {  // destroy a pinned object
        for (const auto& [obj, m] : model_objects_) {
          if (m.pins > 0) {
            EXPECT_THROW(dm_.destroy_object(obj), UsageError);
            return;
          }
        }
        return;
      }
      case 1: {  // free the primary of an object with siblings
        for (const auto& [obj, m] : model_objects_) {
          if (m.regions.size() > 1) {
            EXPECT_THROW(dm_.free(m.primary), UsageError);
            return;
          }
        }
        return;
      }
      case 2: {  // unlink the primary
        for (const auto& [obj, m] : model_objects_) {
          if (m.primary != nullptr) {
            EXPECT_THROW(dm_.unlink(*m.primary), UsageError);
            return;
          }
        }
        return;
      }
      case 3: {  // copyto into a smaller destination
        dm::Region* small = nullptr;
        dm::Region* large = nullptr;
        for (const auto& [r, m] : model_regions_) {
          if (small == nullptr || m.size < model_regions_.at(small).size)
            small = r;
          if (large == nullptr || m.size > model_regions_.at(large).size)
            large = r;
        }
        if (small != nullptr && large != nullptr &&
            model_regions_.at(small).size < model_regions_.at(large).size) {
          EXPECT_THROW(dm_.copyto(*small, *large), UsageError);
        }
        return;
      }
      default: {  // setprimary on a pinned object
        for (const auto& [obj, m] : model_objects_) {
          if (m.pins > 0 && m.primary != nullptr) {
            EXPECT_THROW(dm_.setprimary(*obj, *m.primary), UsageError);
            return;
          }
        }
        return;
      }
    }
  }

  void teardown() {
    for (const auto& [obj, m] : model_objects_) {
      while (model_objects_.at(obj).pins > 0) {
        dm_.unpin(*obj);
        --model_objects_.at(obj).pins;
      }
      dm_.destroy_object(obj);
    }
    model_objects_.clear();
    for (const auto& [r, m] : model_regions_) {
      if (m.parent == nullptr) dm_.free(r);
    }
    model_regions_.clear();
  }

  // --- the audit + model reconciliation after every step -------------------

  void audit_and_reconcile(std::size_t step) {
    const auto report = audit::verify(dm_);
    ASSERT_TRUE(report.ok())
        << "audit violations after step " << step << ":\n"
        << report.to_string();

    ASSERT_EQ(dm_.live_objects(), model_objects_.size()) << "step " << step;
    std::size_t model_region_count = 0;
    std::vector<std::size_t> model_bytes(dm_.device_count(), 0);
    for (const auto& [r, m] : model_regions_) {
      ++model_region_count;
      model_bytes[m.device] += util::align_up(m.size, kAlign);
    }
    ASSERT_EQ(dm_.live_regions(), model_region_count) << "step " << step;
    for (std::uint32_t d = 0; d < dm_.device_count(); ++d) {
      const auto stats = dm_.device_stats({d});
      ASSERT_EQ(stats.allocated, model_bytes[d])
          << "allocated-byte drift on device " << d << " at step " << step;
    }

    // Object-level reconciliation (exact, not statistical).
    for (const auto& [obj, m] : model_objects_) {
      ASSERT_EQ(dm_.getprimary(*obj), m.primary) << "step " << step;
      ASSERT_EQ(obj->region_count(), m.regions.size()) << "step " << step;
      ASSERT_EQ(obj->pin_count(), m.pins) << "step " << step;
      for (dm::Region* r : m.regions) {
        ASSERT_EQ(dm_.parent(*r), obj) << "step " << step;
      }
    }
  }

  sim::Platform platform_;
  sim::Clock clock_;
  telemetry::TrafficCounters counters_;
  dm::DataManager dm_;
  util::Xoshiro256 rng_;
  std::map<dm::Object*, ModelObject> model_objects_;
  std::map<dm::Region*, ModelRegion> model_regions_;
  std::size_t serial_ = 0;
};

// The acceptance run: >= 5000 steps, audited after every one.  The CA_AUDIT
// hook is installed for the whole run so that, in builds compiled with
// CA_AUDIT_ENABLED (Debug / -DCA_AUDIT=ON), every *internal* mutation
// boundary -- including the intermediate states inside evictfrom -- is
// audited too, with abort-on-violation.
TEST(AuditStress, FiveThousandSeededStepsStayInvariantClean) {
  audit::ScopedAbortHook hook;
  StressHarness h(/*seed=*/0xCA11AB1E5EEDULL, 2 * util::MiB, 8 * util::MiB);
  h.run(5200);
}

TEST(AuditStress, SecondSeedSmallHeapsForceEvictionPressure) {
  audit::ScopedAbortHook hook;
  // Tiny fast tier: allocations fail often, exercising failure paths.
  StressHarness h(/*seed=*/42, 256 * util::KiB, 1 * util::MiB);
  h.run(1500);
}

TEST(AuditStress, ThirdSeedLargeObjects) {
  audit::ScopedAbortHook hook;
  StressHarness h(/*seed=*/7777, 1 * util::MiB, 4 * util::MiB);
  h.run(1500);
}

// --- allocator-level fit-policy sweep ---------------------------------------
//
// The binned free lists keep different orderings per fit policy, so each
// policy gets its own seeded churn run with the full allocator audit
// (tiling, bins, bitmaps, boundary tags) after every step.

void run_allocator_sweep(mem::FreeListAllocator::Fit fit, std::uint64_t seed,
                         std::size_t steps) {
  mem::FreeListAllocator alloc(4 * util::MiB, 64, fit);
  util::Xoshiro256 rng(seed);
  std::vector<std::size_t> live;
  for (std::size_t step = 0; step < steps; ++step) {
    if (rng.bounded(100) < 55 || live.empty()) {
      std::size_t size;
      switch (rng.bounded(4)) {
        case 0: size = 1 + rng.bounded(512); break;
        case 1: size = 1 + rng.bounded(8 * util::KiB); break;
        case 2: size = 1 + rng.bounded(64 * util::KiB); break;
        default: size = 1 + rng.bounded(512 * util::KiB); break;
      }
      if (const auto off = alloc.allocate(size)) live.push_back(*off);
    } else {
      const std::size_t pick = rng.bounded(live.size());
      alloc.free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
    const auto report = audit::verify(alloc);
    ASSERT_TRUE(report.ok())
        << "allocator audit violations after step " << step << ":\n"
        << report.to_string();
  }
}

TEST(AuditStress, AllocatorFirstFitSweepStaysClean) {
  run_allocator_sweep(mem::FreeListAllocator::Fit::kFirstFit,
                      /*seed=*/0xF125F17, 5200);
}

TEST(AuditStress, AllocatorBestFitSweepStaysClean) {
  run_allocator_sweep(mem::FreeListAllocator::Fit::kBestFit,
                      /*seed=*/0xBE57F17, 5200);
}

}  // namespace
}  // namespace ca
