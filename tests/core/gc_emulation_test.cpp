// Tests for the Julia-GC emulation and its interaction with the memory
// optimization (M): without M, semantically dead arrays linger and cost
// NVRAM writebacks when evicted -- the exact mechanism behind Fig. 5's
// CA:L vs CA:LM gap.
#include <gtest/gtest.h>

#include "core/cached_array.hpp"
#include "core/runtime.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"

namespace ca::core {
namespace {

Runtime::PolicyFactory lru_factory(policy::LruPolicyConfig cfg) {
  return [cfg](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  };
}

sim::Platform small_platform() {
  return sim::Platform::cascade_lake_scaled(256 * util::KiB, 2 * util::MiB);
}

RuntimeOptions no_proactive_gc() {
  RuntimeOptions opts;
  opts.gc_trigger_fraction = 0.0;
  return opts;
}

TEST(GcEmulation, DeadArraysCauseNvramWritesWithoutM) {
  // Without M: produce short-lived dirty arrays that exceed fast capacity.
  // The dead-but-uncollected arrays get evicted to NVRAM -- pure waste.
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = true, .eager_retire = false}),
             no_proactive_gc());
  for (int i = 0; i < 8; ++i) {
    CachedArray<float> tmp(rt, 16 * util::KiB);  // 64 KiB each
    tmp.with_write([](std::span<float> s) { s[0] = 1.f; });
    tmp.retire();  // ignored by the policy (no M)
  }
  EXPECT_GT(rt.counters().device(sim::kSlow).bytes_written, 0u);
  rt.gc_collect();
}

TEST(GcEmulation, EagerRetireElidesThoseWrites) {
  // With M: the same workload frees each array before the next allocation,
  // so fast memory never overflows and NVRAM sees no writes at all.
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = true, .eager_retire = true}),
             no_proactive_gc());
  for (int i = 0; i < 8; ++i) {
    CachedArray<float> tmp(rt, 16 * util::KiB);
    tmp.with_write([](std::span<float> s) { s[0] = 1.f; });
    tmp.retire();
  }
  EXPECT_EQ(rt.counters().device(sim::kSlow).bytes_written, 0u);
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

TEST(GcEmulation, ResidencyGrowsUntilCollectionWithoutM) {
  // The Fig. 3 sawtooth: without M resident bytes increase monotonically
  // until the GC runs.
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = false, .eager_retire = false}),
             no_proactive_gc());
  std::size_t prev = 0;
  for (int i = 0; i < 8; ++i) {
    CachedArray<float> tmp(rt, 16 * util::KiB);
    const std::size_t now = rt.manager().resident_bytes();
    EXPECT_GT(now, prev);
    prev = now;
  }
  rt.gc_collect();
  EXPECT_EQ(rt.manager().resident_bytes(), 0u);
}

TEST(GcEmulation, ResidencyStaysFlatWithM) {
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = true, .eager_retire = true}),
             no_proactive_gc());
  std::size_t peak = 0;
  for (int i = 0; i < 8; ++i) {
    CachedArray<float> tmp(rt, 16 * util::KiB);
    tmp.retire();
    peak = std::max(peak, rt.manager().resident_bytes());
  }
  EXPECT_LE(peak, 64 * util::KiB);
}

TEST(GcEmulation, PressureGcReclaimsDeadArraysMidRun) {
  // Slow tier 2 MiB, no proactive trigger: allocating 256 KiB x 16 in slow
  // memory must survive via pressure-triggered collections.
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = false, .eager_retire = false}),
             no_proactive_gc());
  for (int i = 0; i < 16; ++i) {
    CachedArray<float> tmp(rt, 64 * util::KiB);  // 256 KiB
  }
  EXPECT_GE(rt.gc_stats().pressure_triggers, 1u);
  EXPECT_GE(rt.gc_stats().objects_collected, 8u);
}

TEST(GcEmulation, CollectedBytesAreAccurate) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = false}),
             no_proactive_gc());
  { CachedArray<float> a(rt, 1024); }
  { CachedArray<float> b(rt, 2048); }
  EXPECT_EQ(rt.gc_collect(), 4096u + 8192u);
  EXPECT_EQ(rt.gc_stats().bytes_collected, 4096u + 8192u);
}

}  // namespace
}  // namespace ca::core
