#include "core/cached_array.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/kernel_launch.hpp"
#include "policy/lru_policy.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::core {
namespace {

Runtime::PolicyFactory lru_factory(policy::LruPolicyConfig cfg = {}) {
  return [cfg](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  };
}

sim::Platform small_platform() {
  return sim::Platform::cascade_lake_scaled(256 * util::KiB, 1 * util::MiB);
}

TEST(CachedArray, EmptyHandle) {
  CachedArray<float> a;
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.object(), nullptr);
}

TEST(CachedArray, AllocateAndSizes) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<float> a(rt, 1000, "acts");
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a.size_bytes(), 4000u);
  EXPECT_EQ(a.object()->name(), "acts");
}

TEST(CachedArray, WriteThenReadRoundTrip) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<int> a(rt, 256);
  a.with_write([](std::span<int> s) {
    std::iota(s.begin(), s.end(), 0);
  });
  a.with_read([](std::span<const int> s) {
    for (int i = 0; i < 256; ++i) EXPECT_EQ(s[i], i);
  });
}

TEST(CachedArray, WriteMarksPrimaryDirty) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<int> a(rt, 16);
  a.with_write([](std::span<int> s) { s[0] = 1; });
  EXPECT_TRUE(rt.manager().isdirty(*rt.manager().getprimary(*a.object())));
}

TEST(CachedArray, CopiesShareTheObject) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<int> a(rt, 16);
  CachedArray<int> b = a;
  EXPECT_EQ(a.object(), b.object());
  a.with_write([](std::span<int> s) { s[0] = 42; });
  b.with_read([](std::span<const int> s) { EXPECT_EQ(s[0], 42); });
}

TEST(CachedArray, DataSurvivesEvictionAndReturn) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<int> a(rt, 1024);
  a.with_write([](std::span<int> s) {
    for (std::size_t i = 0; i < s.size(); ++i) s[i] = static_cast<int>(i * 3);
  });
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  lru.evict(*a.object());
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(*a.object()),
                              sim::kSlow));
  // Reading from slow memory still sees the data (no movement required).
  a.with_read([](std::span<const int> s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(s[i], static_cast<int>(i * 3));
    }
  });
  // will_write pulls it back to fast.
  a.will_write();
  EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(*a.object()),
                              sim::kFast));
  a.with_read([](std::span<const int> s) {
    for (std::size_t i = 0; i < s.size(); ++i) {
      ASSERT_EQ(s[i], static_cast<int>(i * 3));
    }
  });
}

TEST(CachedArray, RetireWithMInvalidatesAllHandles) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = true}));
  CachedArray<int> a(rt, 16);
  CachedArray<int> b = a;
  EXPECT_TRUE(a.retire());
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

TEST(CachedArray, RetireWithoutMKeepsHandleUsable) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = false}));
  CachedArray<int> a(rt, 16);
  EXPECT_FALSE(a.retire());
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(rt.manager().live_objects(), 1u);
}

TEST(CachedArray, AccessAfterRetireThrows) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = true}));
  CachedArray<int> a(rt, 16);
  a.retire();
  EXPECT_THROW(a.with_read([](std::span<const int>) {}), InternalError);
  EXPECT_THROW(a.will_read(), InternalError);
}

TEST(CachedArray, DestructorRoutesToGc) {
  Runtime rt(small_platform(), lru_factory());
  { CachedArray<int> a(rt, 16); }
  EXPECT_EQ(rt.gc_pending(), 1u);
  rt.gc_collect();
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

TEST(CachedArray, HintsForwardWithoutError) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<int> a(rt, 16);
  a.will_read();
  a.will_write();
  a.will_use();
  a.archive();
  SUCCEED();
}

TEST(KernelLaunch, MultiArgumentStagingAndPinning) {
  Runtime rt(small_platform(), lru_factory());
  CachedArray<float> x(rt, 128), w(rt, 128), y(rt, 128);
  x.with_write([](std::span<float> s) { std::fill(s.begin(), s.end(), 2.f); });
  w.with_write([](std::span<float> s) { std::fill(s.begin(), s.end(), 3.f); });

  KernelLaunch launch(rt);
  launch.reads(x).reads(w).writes(y);
  launch.run([&] {
    EXPECT_TRUE(x.object()->pinned());
    EXPECT_TRUE(w.object()->pinned());
    EXPECT_TRUE(y.object()->pinned());
    y.with_write([&](std::span<float> out) {
      x.with_read([&](std::span<const float> a) {
        w.with_read([&](std::span<const float> b) {
          for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] * b[i];
        });
      });
    });
  });
  EXPECT_FALSE(x.object()->pinned());
  y.with_read([](std::span<const float> s) {
    for (const float v : s) EXPECT_FLOAT_EQ(v, 6.f);
  });
}

TEST(KernelLaunch, WrittenArgumentsLandInFastMemory) {
  Runtime rt(small_platform(), lru_factory({.local_alloc = true}));
  CachedArray<float> y(rt, 128);
  auto& lru = static_cast<policy::LruPolicy&>(rt.policy());
  lru.evict(*y.object());
  ASSERT_TRUE(rt.manager().in(*rt.manager().getprimary(*y.object()),
                              sim::kSlow));
  KernelLaunch launch(rt);
  launch.writes(y);
  launch.run([&] {
    EXPECT_TRUE(rt.manager().in(*rt.manager().getprimary(*y.object()),
                                sim::kFast));
  });
}

}  // namespace
}  // namespace ca::core
