#include "core/runtime.hpp"

#include <gtest/gtest.h>

#include "policy/lru_policy.hpp"
#include "util/align.hpp"
#include "util/error.hpp"

namespace ca::core {
namespace {

Runtime::PolicyFactory lru_factory(policy::LruPolicyConfig cfg = {}) {
  return [cfg](dm::DataManager& dm) {
    return std::make_unique<policy::LruPolicy>(dm, cfg);
  };
}

sim::Platform small_platform() {
  return sim::Platform::cascade_lake_scaled(256 * util::KiB, 1 * util::MiB);
}

TEST(Runtime, NewObjectGetsPlacement) {
  Runtime rt(small_platform(), lru_factory());
  dm::Object& obj = rt.new_object(64 * util::KiB, "tensor");
  EXPECT_NE(rt.manager().getprimary(obj), nullptr);
  EXPECT_EQ(obj.name(), "tensor");
  rt.release(obj);
  rt.gc_collect();
}

TEST(Runtime, ReleaseDefersDestructionUntilGc) {
  Runtime rt(small_platform(), lru_factory());
  dm::Object& obj = rt.new_object(64 * util::KiB);
  rt.release(obj);
  EXPECT_EQ(rt.gc_pending(), 1u);
  EXPECT_EQ(rt.manager().live_objects(), 1u);  // still allocated
  const std::size_t freed = rt.gc_collect();
  EXPECT_EQ(freed, 64 * util::KiB);
  EXPECT_EQ(rt.manager().live_objects(), 0u);
  EXPECT_EQ(rt.gc_pending(), 0u);
}

TEST(Runtime, GcChargesTime) {
  Runtime rt(small_platform(), lru_factory());
  rt.release(rt.new_object(1024));
  rt.gc_collect();
  EXPECT_GT(rt.clock().spent(sim::TimeCategory::kGc), 0.0);
  EXPECT_EQ(rt.gc_stats().collections, 1u);
  EXPECT_EQ(rt.gc_stats().objects_collected, 1u);
}

TEST(Runtime, EmptyGcIsFree) {
  Runtime rt(small_platform(), lru_factory());
  EXPECT_EQ(rt.gc_collect(), 0u);
  EXPECT_EQ(rt.gc_stats().collections, 0u);
  EXPECT_DOUBLE_EQ(rt.clock().spent(sim::TimeCategory::kGc), 0.0);
}

TEST(Runtime, RetireWithMDestroysImmediately) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = true}));
  dm::Object& obj = rt.new_object(64 * util::KiB);
  EXPECT_TRUE(rt.retire(obj));
  EXPECT_EQ(rt.manager().live_objects(), 0u);
  EXPECT_EQ(rt.gc_pending(), 0u);
}

TEST(Runtime, RetireWithoutMLeavesObjectForGc) {
  Runtime rt(small_platform(), lru_factory({.eager_retire = false}));
  dm::Object& obj = rt.new_object(64 * util::KiB);
  EXPECT_FALSE(rt.retire(obj));
  EXPECT_EQ(rt.manager().live_objects(), 1u);
  rt.release(obj);
  rt.gc_collect();
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

TEST(Runtime, AllocationPressureTriggersGcInsteadOfOom) {
  // Slow tier: 1 MiB.  Allocate-and-release 256 KiB objects forever; the
  // pressure handler must collect the garbage instead of throwing.
  Runtime rt(small_platform(),
             lru_factory({.local_alloc = false, .eager_retire = false}));
  for (int i = 0; i < 32; ++i) {
    dm::Object& obj = rt.new_object(256 * util::KiB);
    rt.release(obj);
  }
  EXPECT_GE(rt.gc_stats().pressure_triggers, 1u);
  rt.gc_collect();
  EXPECT_EQ(rt.manager().live_objects(), 0u);
}

TEST(Runtime, GcTriggerFractionCollectsProactively) {
  RuntimeOptions opts;
  opts.gc_trigger_fraction = 0.10;  // collect at 10% residency
  Runtime rt(small_platform(), lru_factory({.local_alloc = false}), opts);
  rt.release(rt.new_object(192 * util::KiB));  // > 10% of 1.25 MiB total
  (void)rt.new_object(1024);                   // triggers the proactive GC
  EXPECT_EQ(rt.gc_stats().collections, 1u);
}

TEST(Runtime, ResolveRequiresKernelBracket) {
  Runtime rt(small_platform(), lru_factory());
  dm::Object& obj = rt.new_object(1024);
  EXPECT_THROW(rt.resolve(obj, false), InternalError);
  dm::Object* args[] = {&obj};
  rt.begin_kernel(args);
  EXPECT_NE(rt.resolve(obj, false), nullptr);
  rt.end_kernel(args);
  rt.release(obj);
  rt.gc_collect();
}

TEST(Runtime, ResolveForWriteMarksDirty) {
  Runtime rt(small_platform(), lru_factory());
  dm::Object& obj = rt.new_object(1024);
  dm::Object* args[] = {&obj};
  rt.begin_kernel(args);
  rt.resolve(obj, false);
  EXPECT_FALSE(rt.manager().isdirty(*rt.manager().getprimary(obj)));
  rt.resolve(obj, true);
  EXPECT_TRUE(rt.manager().isdirty(*rt.manager().getprimary(obj)));
  rt.end_kernel(args);
  rt.release(obj);
  rt.gc_collect();
}

TEST(Runtime, KernelBracketPinsArguments) {
  Runtime rt(small_platform(), lru_factory());
  dm::Object& obj = rt.new_object(1024);
  dm::Object* args[] = {&obj};
  rt.begin_kernel(args);
  EXPECT_TRUE(obj.pinned());
  rt.end_kernel(args);
  EXPECT_FALSE(obj.pinned());
  rt.release(obj);
  rt.gc_collect();
}

TEST(Runtime, DefragmentAllCompactsHeaps) {
  Runtime rt(small_platform(), lru_factory({.local_alloc = false}));
  dm::Object& a = rt.new_object(64 * util::KiB);
  dm::Object& b = rt.new_object(64 * util::KiB);
  rt.release(a);
  rt.gc_collect();
  rt.defragment_all();
  EXPECT_EQ(rt.manager().getprimary(b)->offset(), 0u);
  rt.release(b);
  rt.gc_collect();
}

TEST(Runtime, TotalCapacitySumsDevices) {
  Runtime rt(small_platform(), lru_factory());
  EXPECT_EQ(rt.total_capacity(), 256 * util::KiB + 1 * util::MiB);
}

}  // namespace
}  // namespace ca::core
